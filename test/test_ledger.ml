(* The cross-run observability layer: the append-only ledger
   (Mcc_obs.Ledger), the payload/history/diff conventions built on it
   (Mcc_core.Crossrun), and the OpenMetrics exposition of metric
   snapshots.  The load-bearing properties are the determinism rules —
   content-hash digests, wall-last rendering, zero diff drift for
   same-config runs — that make ledger entries comparable across
   invocations. *)

module Json = Mcc_obs.Json
module Ledger = Mcc_obs.Ledger
module Metrics = Mcc_obs.Metrics
module Crossrun = Mcc_core.Crossrun
module Runner = Mcc_core.Runner
module Spec = Mcc_core.Spec

let contains ~needle haystack =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || find (i + 1))
  in
  find 0

(* A fresh ledger directory per test case, so appends never see a
   previous case's entries. *)
let temp_counter = ref 0

let fresh_dir () =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcc-ledger-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  let file = Ledger.file ~dir in
  if Sys.file_exists file then Sys.remove file;
  dir

let config_payload sessions =
  Json.Obj
    [
      ( "config",
        Json.Obj
          [ ("command", Json.String "run"); ("sessions", Json.Int sessions) ] );
      ("rows", Json.List [ Json.Obj [ ("name", Json.String "fig1") ] ]);
    ]

let wall_suffix rate =
  [
    ("recorded_unix_s", Json.Float 1e9);
    ("wall_s", Json.Float 2.5);
    ("events_per_sec", Json.Float rate);
    ("figures", Json.Obj [ ("fig1", Json.Float rate) ]);
  ]

(* --- Ledger ------------------------------------------------------------ *)

let test_digest () =
  let j = config_payload 4 in
  let d = Ledger.digest_of_json j in
  Alcotest.(check int) "16 hex chars" 16 (String.length d);
  String.iter
    (fun c ->
      Alcotest.(check bool) "lowercase hex" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    d;
  Alcotest.(check string) "same tree, same digest" d
    (Ledger.digest_of_json (config_payload 4));
  Alcotest.(check bool) "different tree, different digest" true
    (d <> Ledger.digest_of_json (config_payload 5))

let test_append_load () =
  let dir = fresh_dir () in
  let append label rate =
    match
      Ledger.append ~dir ~kind:"run" ~label ~payload:(config_payload 4)
        ~wall:(wall_suffix rate) ()
    with
    | Ok e -> e
    | Error m -> Alcotest.failf "append failed: %s" m
  in
  let a = append "fig1" 100. in
  let b = append "fig1" 250. in
  Alcotest.(check int) "first entry is seq 1" 1 a.Ledger.seq;
  Alcotest.(check int) "second entry is seq 2" 2 b.Ledger.seq;
  Alcotest.(check string) "same config, same digest" a.Ledger.digest
    b.Ledger.digest;
  (match Ledger.load ~dir with
  | Ok [ la; lb ] ->
      Alcotest.(check string) "kind round-trips" "run" la.Ledger.kind;
      Alcotest.(check string) "label round-trips" "fig1" la.Ledger.label;
      Alcotest.(check string) "digest round-trips" a.Ledger.digest
        la.Ledger.digest;
      Alcotest.(check string) "payload round-trips"
        (Json.to_string a.Ledger.payload)
        (Json.to_string la.Ledger.payload);
      Alcotest.(check (option (float 1e-9))) "wall round-trips" (Some 250.)
        (Option.bind
           (List.assoc_opt "events_per_sec" lb.Ledger.wall)
           Json.to_float_opt)
  | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)
  | Error m -> Alcotest.failf "load failed: %s" m);
  Alcotest.(check bool) "missing ledger loads as empty" true
    (Ledger.load ~dir:(dir ^ "-enoent") = Ok [])

let test_wall_renders_last () =
  let entry rate =
    {
      Ledger.seq = 1;
      kind = "run";
      label = "fig1";
      digest = "0123456789abcdef";
      payload = config_payload 4;
      wall = wall_suffix rate;
    }
  in
  let truncate_at_wall s =
    let marker = {|,"wall":|} in
    let m = String.length marker in
    let rec find i =
      if i + m > String.length s then
        Alcotest.failf "no wall object in %s" s
      else if String.sub s i m = marker then String.sub s 0 i
      else find (i + 1)
    in
    find 0
  in
  let a = Json.to_string (Ledger.entry_to_json (entry 100.)) in
  let b = Json.to_string (Ledger.entry_to_json (entry 999.)) in
  Alcotest.(check string)
    "deterministic prefix identical across wall clocks"
    (truncate_at_wall a) (truncate_at_wall b);
  Alcotest.(check bool) "wall is the last member" true
    (contains ~needle:{|"figures":{"fig1":999}}}|} b
    || contains ~needle:{|"figures":{"fig1":999.|} b);
  match Json.of_string a with
  | Error e -> Alcotest.failf "entry does not parse: %s" e
  | Ok j -> (
      match Ledger.entry_of_json j with
      | Error e -> Alcotest.failf "entry_of_json: %s" e
      | Ok e ->
          Alcotest.(check string) "JSON round-trip is exact" a
            (Json.to_string (Ledger.entry_to_json e)))

let test_default_dir () =
  let saved = Sys.getenv_opt "MCC_LEDGER" in
  let restore () =
    Unix.putenv "MCC_LEDGER" (Option.value saved ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "MCC_LEDGER" "/tmp/somewhere-else";
      Alcotest.(check string) "MCC_LEDGER wins" "/tmp/somewhere-else"
        (Ledger.default_dir ());
      Unix.putenv "MCC_LEDGER" "";
      Alcotest.(check string) "empty override falls back" ".mcc/ledger"
        (Ledger.default_dir ()))

(* --- Crossrun ---------------------------------------------------------- *)

let tiny_rows () =
  Runner.run_batch ~jobs:1
    [
      {
        Runner.name = "cell";
        group = "g";
        doc = "d";
        spec =
          Spec.Attack
            (let a = Spec.default_attack in
             { a with Spec.duration = a.Spec.duration *. 0.05 });
      };
    ]

let test_run_payload () =
  let rows = tiny_rows () in
  let payload =
    Crossrun.run_payload ~command:"run"
      ~config:[ ("quick", Json.Bool true) ]
      rows
  in
  let s = Json.to_string payload in
  Alcotest.(check bool) "config names the command" true
    (contains ~needle:{|"command":"run"|} s);
  Alcotest.(check bool) "caller config flags kept" true
    (contains ~needle:{|"quick":true|} s);
  Alcotest.(check bool) "entries carry the spec" true
    (contains ~needle:{|"spec":|} s);
  Alcotest.(check bool) "rows carry metrics" true
    (contains ~needle:{|"metrics":|} s);
  Alcotest.(check bool) "payload has no wall_s" false
    (contains ~needle:{|"wall_s"|} s);
  (* Two identical batches digest identically: the deterministic body
     really is free of host timing. *)
  Alcotest.(check string) "payload digest is reproducible"
    (Ledger.digest_of_json payload)
    (Ledger.digest_of_json
       (Crossrun.run_payload ~command:"run"
          ~config:[ ("quick", Json.Bool true) ]
          (tiny_rows ())));
  let wall = Crossrun.run_wall ~recorded:1e9 rows in
  Alcotest.(check bool) "wall has the recording time" true
    (List.mem_assoc "recorded_unix_s" wall);
  match List.assoc_opt "figures" wall with
  | Some (Json.Obj [ ("cell", Json.Float _) ]) -> ()
  | _ -> Alcotest.fail "figures must map each row to its events/s"

let test_find_value_and_history () =
  let entry seq rate =
    {
      Ledger.seq;
      kind = "run";
      label = "fig1";
      digest = "0123456789abcdef";
      payload = config_payload 4;
      wall = wall_suffix rate;
    }
  in
  let e = entry 1 100. in
  Alcotest.(check (option (float 1e-9))) "figures first" (Some 100.)
    (Crossrun.find_value e ~key:"fig1");
  Alcotest.(check (option (float 1e-9))) "wall fields next" (Some 2.5)
    (Crossrun.find_value e ~key:"wall_s");
  Alcotest.(check (option (float 1e-9))) "missing key" None
    (Crossrun.find_value e ~key:"nope");
  let table =
    Crossrun.history_table ~metric:"events_per_sec" ~width:20
      [ entry 1 100.; entry 2 150.; entry 3 250. ]
  in
  Alcotest.(check bool) "every entry listed" true
    (contains ~needle:"run" table
    && contains ~needle:"fig1" table
    && contains ~needle:"0123456789abcdef" table);
  Alcotest.(check bool) "trend block renders with >= 2 points" true
    (contains ~needle:"trend" table);
  let solo = Crossrun.history_table [ entry 1 100. ] in
  Alcotest.(check bool) "no trend for a single point" false
    (contains ~needle:"trend" solo)

let test_diff () =
  let entry rate =
    {
      Ledger.seq = 1;
      kind = "run";
      label = "fig1";
      digest = "0123456789abcdef";
      payload = config_payload 4;
      wall = wall_suffix rate;
    }
  in
  let same = Crossrun.diff (entry 100.) (entry 100.00001) in
  Alcotest.(check int) "same config: zero deterministic drift" 0
    same.Crossrun.drifted;
  Alcotest.(check int) "noise under threshold is no regression" 0
    (List.length same.Crossrun.regressions);
  (* A 50% throughput drop must be flagged. *)
  let slow = Crossrun.diff (entry 100.) (entry 50.) in
  (match slow.Crossrun.regressions with
  | [ r ] ->
      Alcotest.(check string) "the dropped figure" "fig1" r.Crossrun.key;
      Alcotest.(check bool) "pct is about -50%" true
        (match r.Crossrun.pct with
        | Some p -> Float.abs (p +. 0.5) < 1e-6
        | None -> false)
  | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs));
  Alcotest.(check bool) "rendering flags it" true
    (contains ~needle:"REGRESSION" slow.Crossrun.rendering);
  (* An improvement is not a regression — figures are rates. *)
  let fast = Crossrun.diff (entry 100.) (entry 200.) in
  Alcotest.(check int) "speed-up is clean" 0
    (List.length fast.Crossrun.regressions);
  (* Payload drift is counted and the digest mismatch reported. *)
  let other =
    { (entry 100.) with Ledger.payload = config_payload 8; digest = "ffff" }
  in
  let drifted = Crossrun.diff (entry 100.) other in
  Alcotest.(check bool) "config change counts as drift" true
    (drifted.Crossrun.drifted > 0);
  Alcotest.(check bool) "digest drift named in rendering" true
    (contains ~needle:"DRIFT" drifted.Crossrun.rendering)

let test_entry_of_document () =
  let full =
    Ledger.entry_to_json
      {
        Ledger.seq = 7;
        kind = "run";
        label = "fig1";
        digest = "0123456789abcdef";
        payload = config_payload 4;
        wall = wall_suffix 100.;
      }
  in
  (match Crossrun.entry_of_document full with
  | Ok e ->
      Alcotest.(check int) "full entry kept as-is" 7 e.Ledger.seq;
      Alcotest.(check string) "kind kept" "run" e.Ledger.kind
  | Error m -> Alcotest.failf "full entry rejected: %s" m);
  (* The bench baseline format: a flat object of figure -> rate. *)
  let flat =
    Json.Obj [ ("fig1", Json.Float 1200.); ("fig2", Json.Float 3400.) ]
  in
  (match Crossrun.entry_of_document flat with
  | Ok e ->
      Alcotest.(check int) "synthetic entry" 0 e.Ledger.seq;
      Alcotest.(check string) "bench kind" "bench" e.Ledger.kind;
      Alcotest.(check (option (float 1e-9))) "figures adopted" (Some 1200.)
        (Crossrun.find_value e ~key:"fig1")
  | Error m -> Alcotest.failf "flat baseline rejected: %s" m);
  match Crossrun.entry_of_document (Json.String "nope") with
  | Ok _ -> Alcotest.fail "non-object document must be rejected"
  | Error _ -> ()

(* --- OpenMetrics -------------------------------------------------------- *)

let test_openmetrics () =
  let page =
    Metrics.to_openmetrics
      [
        ("engine.events", Metrics.Counter 42);
        ("link.queue_depth", Metrics.Gauge 3.5);
        ( "sched.latency",
          Metrics.Histogram
            {
              bounds = [ 1.; 2. ];
              buckets = [ 3; 4; 5 ];
              observations = 12;
              sum = 18.5;
            } );
      ]
  in
  Alcotest.(check bool) "counter gets _total and its value" true
    (contains ~needle:"# TYPE mcc_engine_events counter" page
    && contains ~needle:"mcc_engine_events_total 42" page);
  Alcotest.(check bool) "gauge family" true
    (contains ~needle:"# TYPE mcc_link_queue_depth gauge" page
    && contains ~needle:"mcc_link_queue_depth 3.5" page);
  Alcotest.(check bool) "histogram buckets are cumulative" true
    (contains ~needle:{|mcc_sched_latency_bucket{le="1"} 3|} page
    && contains ~needle:{|mcc_sched_latency_bucket{le="2"} 7|} page
    && contains ~needle:{|mcc_sched_latency_bucket{le="+Inf"} 12|} page
    && contains ~needle:"mcc_sched_latency_sum 18.5" page
    && contains ~needle:"mcc_sched_latency_count 12" page);
  Alcotest.(check bool) "every family has HELP" true
    (contains ~needle:"# HELP mcc_engine_events" page);
  let eof = "# EOF\n" in
  Alcotest.(check bool) "single trailing EOF marker" true
    (String.length page >= String.length eof
    && String.sub page
         (String.length page - String.length eof)
         (String.length eof)
       = eof);
  (* Labelled snapshots share one family declaration. *)
  let multi =
    Metrics.openmetrics_page
      [
        ([ ("run", "a\"b") ], [ ("engine.events", Metrics.Counter 1) ]);
        ([ ("run", "c") ], [ ("engine.events", Metrics.Counter 2) ]);
      ]
  in
  let count_sub needle s =
    let n = String.length needle in
    let rec go acc i =
      if i + n > String.length s then acc
      else if String.sub s i n = needle then go (acc + 1) (i + 1)
      else go acc (i + 1)
    in
    go 0 0
  in
  Alcotest.(check int) "family declared once across label sets" 1
    (count_sub "# TYPE mcc_engine_events counter" multi);
  Alcotest.(check bool) "label values escaped" true
    (contains ~needle:{|mcc_engine_events_total{run="a\"b"} 1|} multi
    && contains ~needle:{|mcc_engine_events_total{run="c"} 2|} multi)

let suite =
  ( "ledger",
    [
      Alcotest.test_case "digest is a content hash" `Quick test_digest;
      Alcotest.test_case "append/load round-trip" `Quick test_append_load;
      Alcotest.test_case "wall renders last" `Quick test_wall_renders_last;
      Alcotest.test_case "MCC_LEDGER override" `Quick test_default_dir;
      Alcotest.test_case "run payload convention" `Slow test_run_payload;
      Alcotest.test_case "find_value and history table" `Quick
        test_find_value_and_history;
      Alcotest.test_case "diff drift and regressions" `Quick test_diff;
      Alcotest.test_case "diff accepts standalone documents" `Quick
        test_entry_of_document;
      Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics;
    ] )
