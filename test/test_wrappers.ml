(* The deprecated optional-argument entry points must stay equivalent to
   the spec-record API for the release they are kept.  This file is the
   only place allowed to call them. *)

[@@@warning "-3"]

module E = Mcc_core.Experiments
module Spec = Mcc_core.Spec
module Flid = Mcc_mcast.Flid

let test_attack_wrapper () =
  let a = E.attack ~duration:30. ~attack_at:15. ~mode:Flid.Plain () in
  let b =
    E.run_attack
      { Spec.default_attack with
        Spec.duration = 30.; attack_at = 15.; mode = Flid.Plain }
  in
  Alcotest.(check (float 1e-9)) "f1_before" b.E.f1_before a.E.f1_before;
  Alcotest.(check (float 1e-9)) "f1_after" b.E.f1_after a.E.f1_after;
  Alcotest.(check int) "series length" (List.length b.E.f1) (List.length a.E.f1)

let test_sweep_wrapper () =
  let a =
    E.throughput_vs_sessions ~duration:20. ~mode:Flid.Plain ~counts:[ 1; 2 ] ()
  in
  let b =
    List.map
      (fun sessions ->
        E.run_sweep
          { Spec.default_sweep with
            Spec.seed = 11 + sessions; duration = 20.; sessions;
            mode = Flid.Plain })
      [ 1; 2 ]
  in
  List.iter2
    (fun (x : E.sweep_point) (y : E.sweep_point) ->
      Alcotest.(check int) "sessions" y.E.sessions x.E.sessions;
      Alcotest.(check (float 1e-9)) "average" y.E.average_kbps x.E.average_kbps)
    a b

let test_partial_wrapper () =
  let a = E.partial_deployment ~duration:60. ~attack_at:20. () in
  let b =
    E.run_partial { Spec.default_partial with Spec.duration = 60.; attack_at = 20. }
  in
  Alcotest.(check (float 1e-9)) "protected" b.E.protected_attacker_kbps
    a.E.protected_attacker_kbps;
  Alcotest.(check (float 1e-9)) "unprotected" b.E.unprotected_attacker_kbps
    a.E.unprotected_attacker_kbps

let test_overhead_wrapper () =
  let a = E.overhead_vs_slot ~duration:10. ~slots:[ 0.25 ] () in
  let b =
    [ E.run_overhead
        { Spec.default_overhead with
          Spec.duration = 10.; slot = 0.25; axis = Spec.Slot } ]
  in
  List.iter2
    (fun (x : E.overhead_point) (y : E.overhead_point) ->
      Alcotest.(check (float 1e-9)) "x" y.E.x x.E.x;
      Alcotest.(check (float 1e-9)) "delta measured" y.E.delta_measured
        x.E.delta_measured;
      Alcotest.(check (float 1e-9)) "sigma measured" y.E.sigma_measured
        x.E.sigma_measured)
    a b

let suite =
  ( "deprecated-wrappers",
    [
      Alcotest.test_case "attack" `Slow test_attack_wrapper;
      Alcotest.test_case "sweep" `Slow test_sweep_wrapper;
      Alcotest.test_case "partial" `Slow test_partial_wrapper;
      Alcotest.test_case "overhead" `Quick test_overhead_wrapper;
    ] )
