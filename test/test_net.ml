module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Link = Mcc_net.Link
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload
module Multicast = Mcc_net.Multicast

(* Two hosts joined by two routers: h1 - r1 - r2 - h2. *)
let line_topology () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let h1 = Topology.add_node topo Node.Host in
  let r1 = Topology.add_node topo Node.Edge_router in
  let r2 = Topology.add_node topo Node.Edge_router in
  let h2 = Topology.add_node topo Node.Host in
  let connect a b =
    Topology.connect topo a b ~rate_bps:1_000_000. ~delay_s:0.01
      ~buffer_bytes:10_000 ()
  in
  ignore (connect h1 r1);
  let mid, _ = connect r1 r2 in
  ignore (connect r2 h2);
  Topology.compute_routes topo;
  (sim, topo, h1, r1, r2, h2, mid)

let test_unicast_delivery () =
  let sim, _topo, h1, _, _, h2, _ = line_topology () in
  let got = ref 0 in
  Node.set_unicast_handler h2 (fun _ -> incr got);
  Node.originate h1
    (Packet.make ~src:h1.Node.id ~dst:(Packet.Unicast h2.Node.id) ~size:1000
       Payload.Raw);
  Sim.run sim;
  Alcotest.(check int) "delivered" 1 !got;
  (* 1000 B over three 1 Mbps hops = 3 * 8 ms tx + 3 * 10 ms prop. *)
  Alcotest.(check bool) "latency sane" true
    (Sim.now sim >= 0.054 -. 1e-9 && Sim.now sim < 0.06)

let test_link_serialization () =
  let sim, _topo, h1, _, _, h2, _ = line_topology () in
  let times = ref [] in
  Node.set_unicast_handler h2 (fun _ -> times := Sim.now sim :: !times);
  for _ = 1 to 3 do
    Node.originate h1
      (Packet.make ~src:h1.Node.id ~dst:(Packet.Unicast h2.Node.id) ~size:1000
         Payload.Raw)
  done;
  Sim.run sim;
  match List.rev !times with
  | [ t1; t2; t3 ] ->
      (* Pipelined: one serialization (8 ms) apart at the sink. *)
      Alcotest.(check (float 1e-6)) "spacing 1" 0.008 (t2 -. t1);
      Alcotest.(check (float 1e-6)) "spacing 2" 0.008 (t3 -. t2)
  | _ -> Alcotest.fail "expected 3 deliveries"

let test_drop_tail_and_conservation () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let a = Topology.add_node topo Node.Host in
  let b = Topology.add_node topo Node.Host in
  let ab, _ =
    Topology.connect topo a b ~rate_bps:80_000. ~delay_s:0.001
      ~buffer_bytes:2_000 ()
  in
  Topology.compute_routes topo;
  let received = ref 0 in
  Node.set_unicast_handler b (fun _ -> incr received);
  (* Burst of 10 x 1000 B into an 80 kbps link with a 2000 B buffer:
     1 in service + 2 queued fit; the rest drop. *)
  let sent = 10 in
  for _ = 1 to sent do
    Node.originate a
      (Packet.make ~src:a.Node.id ~dst:(Packet.Unicast b.Node.id) ~size:1000
         Payload.Raw)
  done;
  Sim.run sim;
  Alcotest.(check int) "delivered" 3 !received;
  Alcotest.(check int) "dropped" 7 ab.Link.drops;
  Alcotest.(check int) "conservation" sent (!received + ab.Link.drops)

let test_ecn_marking () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let a = Topology.add_node topo Node.Host in
  let b = Topology.add_node topo Node.Host in
  let ab, _ =
    Topology.connect topo a b ~rate_bps:80_000. ~delay_s:0.001
      ~buffer_bytes:4_000 ~ecn_threshold_bytes:1_500 ()
  in
  Topology.compute_routes topo;
  let marked = ref 0 and clean = ref 0 in
  Node.set_unicast_handler b (fun pkt ->
      if pkt.Packet.ecn then incr marked else incr clean);
  for _ = 1 to 5 do
    Node.originate a
      (Packet.make ~src:a.Node.id ~dst:(Packet.Unicast b.Node.id) ~size:1000
         Payload.Raw)
  done;
  Sim.run sim;
  Alcotest.(check int) "all delivered" 5 (!marked + !clean);
  Alcotest.(check bool) "some marked" true (!marked > 0);
  Alcotest.(check int) "counter matches" !marked ab.Link.marks

let test_routing_shortest_path () =
  (* Square with a shortcut: a-b-d is 2 x 10 ms, a-c-d is 1 + 1 ms. *)
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let a = Topology.add_node topo Node.Core_router in
  let b = Topology.add_node topo Node.Core_router in
  let c = Topology.add_node topo Node.Core_router in
  let d = Topology.add_node topo Node.Core_router in
  let connect x y delay =
    ignore
      (Topology.connect topo x y ~rate_bps:1e6 ~delay_s:delay
         ~buffer_bytes:10_000 ())
  in
  connect a b 0.01;
  connect b d 0.01;
  connect a c 0.001;
  connect c d 0.001;
  Topology.compute_routes topo;
  match Hashtbl.find_opt a.Node.fib d.Node.id with
  | Some link -> Alcotest.(check int) "via c" c.Node.id link.Link.dst
  | None -> Alcotest.fail "no route"

let test_multicast_tree_and_prune () =
  let sim, topo, h1, _r1, r2, h2, mid = line_topology () in
  let group = 500 in
  Topology.register_group topo ~group ~source:h1;
  let got = ref 0 in
  Node.subscribe_local h2 ~group (fun _ -> incr got);
  Multicast.host_join topo ~host:h2 ~group;
  Sim.run_until sim 1.0;
  (* Graft has propagated; send a multicast packet from the source. *)
  Node.originate h1
    (Packet.make ~src:h1.Node.id ~dst:(Packet.Multicast group) ~size:500
       Payload.Raw);
  Sim.run_until sim 2.0;
  Alcotest.(check int) "delivered over tree" 1 !got;
  Alcotest.(check bool) "bottleneck on tree" true (mid.Link.tx_packets >= 1);
  (* Leave: prune propagates, further packets go nowhere. *)
  Multicast.host_leave topo ~host:h2 ~group;
  Sim.run_until sim 3.0;
  Node.originate h1
    (Packet.make ~src:h1.Node.id ~dst:(Packet.Multicast group) ~size:500
       Payload.Raw);
  Sim.run_until sim 4.0;
  Alcotest.(check int) "no delivery after leave" 1 !got;
  Alcotest.(check bool) "pruned from source"
    true
    (Node.downstream r2 ~group = [] && Node.downstream h1 ~group = [])

let test_multicast_branching_copies () =
  (* One source, two receivers behind the same edge router: the
     bottleneck carries each packet once, the edge duplicates. *)
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let src = Topology.add_node topo Node.Host in
  let r1 = Topology.add_node topo Node.Edge_router in
  let r2 = Topology.add_node topo Node.Edge_router in
  let d1 = Topology.add_node topo Node.Host in
  let d2 = Topology.add_node topo Node.Host in
  let connect a b =
    Topology.connect topo a b ~rate_bps:1e6 ~delay_s:0.005
      ~buffer_bytes:10_000 ()
  in
  ignore (connect src r1);
  let mid, _ = connect r1 r2 in
  ignore (connect r2 d1);
  ignore (connect r2 d2);
  Topology.compute_routes topo;
  let group = 600 in
  Topology.register_group topo ~group ~source:src;
  let got1 = ref 0 and got2 = ref 0 in
  Node.subscribe_local d1 ~group (fun _ -> incr got1);
  Node.subscribe_local d2 ~group (fun _ -> incr got2);
  Multicast.host_join topo ~host:d1 ~group;
  Multicast.host_join topo ~host:d2 ~group;
  Sim.run_until sim 0.5;
  for _ = 1 to 4 do
    Node.originate src
      (Packet.make ~src:src.Node.id ~dst:(Packet.Multicast group) ~size:500
         Payload.Raw)
  done;
  Sim.run_until sim 1.0;
  Alcotest.(check int) "receiver 1" 4 !got1;
  Alcotest.(check int) "receiver 2" 4 !got2;
  Alcotest.(check int) "bottleneck carried each packet once" 4
    mid.Link.tx_packets

let test_protected_group_ignores_igmp () =
  let sim, topo, h1, _, r2, h2, _ = line_topology () in
  let group = 700 in
  Topology.register_group topo ~group ~source:h1;
  Hashtbl.replace r2.Node.protected_groups group ();
  let got = ref 0 in
  Node.subscribe_local h2 ~group (fun _ -> incr got);
  Multicast.host_join topo ~host:h2 ~group;
  Sim.run_until sim 1.0;
  Node.originate h1
    (Packet.make ~src:h1.Node.id ~dst:(Packet.Multicast group) ~size:500
       Payload.Raw);
  Sim.run_until sim 2.0;
  Alcotest.(check int) "join ignored on protected group" 0 !got

let test_router_alert_not_to_hosts () =
  let sim, topo, h1, _, r2, h2, _ = line_topology () in
  let group = 800 in
  Topology.register_group topo ~group ~source:h1;
  let host_got = ref 0 and intercepted = ref 0 in
  Node.subscribe_local h2 ~group (fun _ -> incr host_got);
  r2.Node.intercept <- Some (fun _ -> incr intercepted);
  Multicast.host_join topo ~host:h2 ~group;
  Sim.run_until sim 1.0;
  Node.originate h1
    (Packet.make ~router_alert:true ~src:h1.Node.id
       ~dst:(Packet.Multicast group) ~size:100 Payload.Raw);
  Sim.run_until sim 2.0;
  Alcotest.(check int) "host never sees special" 0 !host_got;
  Alcotest.(check int) "edge router intercepts" 1 !intercepted

let test_graft_local_holds_tree () =
  (* A router's own (local) interest keeps it on the tree even with no
     downstream interfaces: SIGMA's control-channel requirement. *)
  let sim, topo, h1, _r1, r2, h2, mid = line_topology () in
  let group = 850 in
  Topology.register_group topo ~group ~source:h1;
  Multicast.graft_local topo ~node:r2 ~group;
  Sim.run_until sim 0.5;
  Node.originate h1
    (Packet.make ~src:h1.Node.id ~dst:(Packet.Multicast group) ~size:200
       Mcc_net.Payload.Raw);
  Sim.run_until sim 1.0;
  Alcotest.(check bool) "tree reaches router" true (mid.Link.tx_packets >= 1);
  (* A downstream join and leave must not sever the local interest. *)
  Node.subscribe_local h2 ~group (fun _ -> ());
  Multicast.host_join topo ~host:h2 ~group;
  Sim.run_until sim 1.5;
  Multicast.host_leave topo ~host:h2 ~group;
  Sim.run_until sim 2.5;
  let before = mid.Link.tx_packets in
  Node.originate h1
    (Packet.make ~src:h1.Node.id ~dst:(Packet.Multicast group) ~size:200
       Mcc_net.Payload.Raw);
  Sim.run_until sim 3.0;
  Alcotest.(check bool) "still on tree after downstream leave" true
    (mid.Link.tx_packets > before);
  (* Dropping the local interest prunes for good. *)
  Multicast.prune_local topo ~node:r2 ~group;
  Sim.run_until sim 4.0;
  let before = mid.Link.tx_packets in
  Node.originate h1
    (Packet.make ~src:h1.Node.id ~dst:(Packet.Multicast group) ~size:200
       Mcc_net.Payload.Raw);
  Sim.run_until sim 5.0;
  Alcotest.(check int) "pruned after local release" before mid.Link.tx_packets

let test_packet_count_buffer () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let a = Topology.add_node topo Node.Host in
  let b = Topology.add_node topo Node.Host in
  let ab, _ =
    Topology.connect topo a b ~rate_bps:80_000. ~delay_s:0.001
      ~buffer_bytes:1_000_000 ~buffer_packets:2 ()
  in
  Topology.compute_routes topo;
  let received = ref 0 in
  Node.set_unicast_handler b (fun _ -> incr received);
  for _ = 1 to 10 do
    Node.originate a
      (Packet.make ~src:a.Node.id ~dst:(Packet.Unicast b.Node.id) ~size:100
         Mcc_net.Payload.Raw)
  done;
  Sim.run sim;
  (* 1 in service + 2 queued; byte budget would have fit all ten. *)
  Alcotest.(check int) "packet cap enforced" 3 !received;
  Alcotest.(check int) "drops counted" 7 ab.Link.drops

let test_lan_repeats () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let r = Topology.add_node topo Node.Edge_router in
  let lan = Topology.add_node topo Node.Lan in
  let a = Topology.add_node topo Node.Host in
  let b = Topology.add_node topo Node.Host in
  ignore
    (Topology.connect topo r lan ~rate_bps:1e7 ~delay_s:0.001
       ~buffer_bytes:10_000 ());
  ignore
    (Topology.connect topo lan a ~rate_bps:1e7 ~delay_s:0.0001
       ~buffer_bytes:10_000 ());
  ignore
    (Topology.connect topo lan b ~rate_bps:1e7 ~delay_s:0.0001
       ~buffer_bytes:10_000 ());
  Topology.compute_routes topo;
  let a_prom = ref 0 and b_local = ref 0 in
  a.Node.promiscuous <- Some (fun _ -> incr a_prom);
  Node.set_unicast_handler b (fun _ -> incr b_local);
  Node.originate r
    (Packet.make ~src:r.Node.id ~dst:(Packet.Unicast b.Node.id) ~size:100
       Payload.Raw);
  Sim.run sim;
  Alcotest.(check int) "b receives" 1 !b_local;
  Alcotest.(check int) "a snoops via promiscuous tap" 1 !a_prom

let suite =
  ( "net",
    [
      Alcotest.test_case "unicast delivery" `Quick test_unicast_delivery;
      Alcotest.test_case "link serialization" `Quick test_link_serialization;
      Alcotest.test_case "drop-tail conservation" `Quick
        test_drop_tail_and_conservation;
      Alcotest.test_case "ecn marking" `Quick test_ecn_marking;
      Alcotest.test_case "shortest path" `Quick test_routing_shortest_path;
      Alcotest.test_case "multicast tree & prune" `Quick
        test_multicast_tree_and_prune;
      Alcotest.test_case "multicast branching" `Quick
        test_multicast_branching_copies;
      Alcotest.test_case "protected group" `Quick
        test_protected_group_ignores_igmp;
      Alcotest.test_case "router alert" `Quick test_router_alert_not_to_hosts;
      Alcotest.test_case "graft_local" `Quick test_graft_local_holds_tree;
      Alcotest.test_case "packet-count buffer" `Quick test_packet_count_buffer;
      Alcotest.test_case "lan repeats" `Quick test_lan_repeats;
    ] )
