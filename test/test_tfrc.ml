module Tfrc = Mcc_mcast.Tfrc
module Rlm = Mcc_mcast.Rlm_like
module Flid = Mcc_mcast.Flid
module Sim = Mcc_engine.Sim
module Dumbbell = Mcc_core.Dumbbell
module Defaults = Mcc_core.Defaults
module Router_agent = Mcc_sigma.Router_agent
module Meter = Mcc_util.Meter
module Prng = Mcc_util.Prng

let test_equation_shape () =
  let rate p = Tfrc.throughput ~packet_bytes:576 ~rtt:0.1 ~loss_rate:p in
  Alcotest.(check bool) "zero loss unbounded" true (rate 0. = infinity);
  Alcotest.(check bool) "monotone in loss" true
    (rate 0.01 > rate 0.05 && rate 0.05 > rate 0.2);
  (* Sanity anchor: ~1% loss, 100 ms RTT, 576-byte packets is on the
     order of a few hundred kbps for TCP. *)
  Alcotest.(check bool)
    (Printf.sprintf "plausible magnitude (%.0f kbps)" (rate 0.01 /. 1000.))
    true
    (rate 0.01 > 100_000. && rate 0.01 < 1_000_000.)

let test_equation_rtt_scaling () =
  let rate rtt = Tfrc.throughput ~packet_bytes:576 ~rtt ~loss_rate:0.02 in
  (* Throughput scales roughly inversely with RTT. *)
  let ratio = rate 0.05 /. rate 0.2 in
  Alcotest.(check bool)
    (Printf.sprintf "4x RTT -> ~4x rate (%.1f)" ratio)
    true
    (ratio > 3. && ratio < 5.)

let test_equation_invalid () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "rtt" true
    (bad (fun () -> Tfrc.throughput ~packet_bytes:576 ~rtt:0. ~loss_rate:0.1));
  Alcotest.(check bool) "loss" true
    (bad (fun () -> Tfrc.throughput ~packet_bytes:576 ~rtt:0.1 ~loss_rate:1.5));
  Alcotest.(check bool) "size" true
    (bad (fun () -> Tfrc.throughput ~packet_bytes:0 ~rtt:0.1 ~loss_rate:0.1))

let test_loss_estimator () =
  let est = Tfrc.Loss_estimator.create ~alpha:0.5 () in
  Alcotest.(check (float 0.)) "initial" 0. (Tfrc.Loss_estimator.value est);
  Tfrc.Loss_estimator.update est ~loss_rate:0.2;
  Alcotest.(check (float 1e-9)) "first sample adopted" 0.2
    (Tfrc.Loss_estimator.value est);
  Tfrc.Loss_estimator.update est ~loss_rate:0.;
  Alcotest.(check (float 1e-9)) "ewma" 0.1 (Tfrc.Loss_estimator.value est);
  Alcotest.(check int) "samples" 2 (Tfrc.Loss_estimator.samples est)

let test_equation_receiver_end_to_end () =
  let sim = Sim.create () in
  let db =
    Dumbbell.create sim ~bottleneck_rate_bps:Defaults.fair_share_bps ()
  in
  let _agent = Router_agent.attach db.Dumbbell.topo db.Dumbbell.right in
  let config =
    Rlm.make_config ~id:5 ~base_group:0x3C00 ~policy:Rlm.Equation
      ~layering:(Defaults.layering ()) ~slot_duration:0.25 ~mode:Flid.Robust ()
  in
  let src = Dumbbell.add_sender db in
  let _sender =
    Rlm.sender_start db.Dumbbell.topo ~node:src ~prng:(Prng.create 91) config
  in
  let host = Dumbbell.add_receiver db in
  let receiver =
    Rlm.receiver_start db.Dumbbell.topo ~host ~prng:(Prng.create 92) config
  in
  Dumbbell.finalize db;
  Sim.run_until sim 60.;
  (* The probe loop must have produced an RTT close to the topology's
     80 ms path round trip. *)
  (match Rlm.receiver_rtt receiver with
  | Some rtt ->
      Alcotest.(check bool)
        (Printf.sprintf "probed rtt %.0f ms" (rtt *. 1000.))
        true
        (rtt > 0.06 && rtt < 0.2)
  | None -> Alcotest.fail "no rtt measured");
  let kbps = Meter.mean_kbps (Rlm.receiver_meter receiver) ~lo:20. ~hi:60. in
  Alcotest.(check bool)
    (Printf.sprintf "equation receiver near fair share (%.0f)" kbps)
    true
    (kbps > 95. && kbps < 320.);
  Alcotest.(check bool) "loss estimate populated" true
    (Rlm.receiver_loss_rate receiver >= 0.)

let suite =
  ( "tfrc",
    [
      Alcotest.test_case "equation shape" `Quick test_equation_shape;
      Alcotest.test_case "rtt scaling" `Quick test_equation_rtt_scaling;
      Alcotest.test_case "invalid args" `Quick test_equation_invalid;
      Alcotest.test_case "loss estimator" `Quick test_loss_estimator;
      Alcotest.test_case "equation receiver end-to-end" `Slow
        test_equation_receiver_end_to_end;
    ] )
