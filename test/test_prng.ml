open Mcc_util

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_split_independent () =
  let parent = Prng.create 5 in
  let child = Prng.split parent in
  let a = Prng.int64 child in
  (* Advancing the parent must not affect the child's already-derived
     state determinism: recreate and compare. *)
  let parent2 = Prng.create 5 in
  let child2 = Prng.split parent2 in
  Alcotest.(check int64) "split deterministic" a (Prng.int64 child2)

let test_copy () =
  let a = Prng.create 9 in
  ignore (Prng.int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.int64 a)
    (Prng.int64 b)

let test_bits_range () =
  let p = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.bits p 16 in
    Alcotest.(check bool) "16-bit range" true (v >= 0 && v < 65536)
  done

let test_bits_invalid () =
  let p = Prng.create 3 in
  Alcotest.check_raises "bits 0" (Invalid_argument "Prng.bits") (fun () ->
      ignore (Prng.bits p 0));
  Alcotest.check_raises "bits 63" (Invalid_argument "Prng.bits") (fun () ->
      ignore (Prng.bits p 63))

let test_int_bound_invalid () =
  let p = Prng.create 3 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int") (fun () ->
      ignore (Prng.int p 0))

let test_exponential_positive () =
  let p = Prng.create 17 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Prng.exponential p ~mean:2. >= 0.)
  done

let test_exponential_mean () =
  let p = Prng.create 17 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential p ~mean:3.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.) < 0.2)

let prop_int_in_bound =
  QCheck.Test.make ~name:"Prng.int always in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let p = Prng.create seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let prop_float_unit =
  QCheck.Test.make ~name:"Prng.float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let p = Prng.create seed in
      let v = Prng.float p in
      v >= 0. && v < 1.)

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "different seeds" `Quick test_different_seeds;
      Alcotest.test_case "split independent" `Quick test_split_independent;
      Alcotest.test_case "copy" `Quick test_copy;
      Alcotest.test_case "bits range" `Quick test_bits_range;
      Alcotest.test_case "bits invalid" `Quick test_bits_invalid;
      Alcotest.test_case "int invalid" `Quick test_int_bound_invalid;
      Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      QCheck_alcotest.to_alcotest prop_int_in_bound;
      QCheck_alcotest.to_alcotest prop_float_unit;
    ] )
