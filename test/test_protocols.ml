(* End-to-end tests of the additional protocol instantiations:
   replicated multicast (paper Fig. 5) and the RLM-like threshold
   protocol (Shamir DELTA). *)

module Sim = Mcc_engine.Sim
module Dumbbell = Mcc_core.Dumbbell
module Defaults = Mcc_core.Defaults
module Router_agent = Mcc_sigma.Router_agent
module Flid = Mcc_mcast.Flid
module Rep = Mcc_mcast.Replicated_proto
module Rlm = Mcc_mcast.Rlm_like
module Layering = Mcc_mcast.Layering
module Meter = Mcc_util.Meter
module Prng = Mcc_util.Prng

let build ~bottleneck ~mode =
  let sim = Sim.create () in
  let db = Dumbbell.create sim ~bottleneck_rate_bps:bottleneck () in
  let agent =
    match mode with
    | Flid.Robust -> Some (Router_agent.attach db.Dumbbell.topo db.Dumbbell.right)
    | Flid.Plain -> None
  in
  (sim, db, agent)

(* --- replicated -------------------------------------------------------- *)

let rep_config ~mode =
  Rep.make_config ~id:1 ~base_group:0x2000 ~layering:(Defaults.layering ())
    ~slot_duration:0.25 ~mode ()

let run_replicated ~mode ~behavior ~seconds ~bottleneck =
  let sim, db, _agent = build ~bottleneck ~mode in
  let config = rep_config ~mode in
  let src = Dumbbell.add_sender db in
  let dst = Dumbbell.add_receiver db in
  let prng = Prng.create 17 in
  let _sender =
    Rep.sender_start db.Dumbbell.topo ~node:src ~prng:(Prng.split prng) config
  in
  let receiver =
    Rep.receiver_start ~behavior db.Dumbbell.topo ~host:dst
      ~prng:(Prng.split prng) config
  in
  Dumbbell.finalize db;
  Sim.run_until sim seconds;
  receiver

let test_replicated_plain_converges () =
  let r =
    run_replicated ~mode:Flid.Plain ~behavior:Flid.Well_behaved ~seconds:60.
      ~bottleneck:Defaults.fair_share_bps
  in
  let g = Rep.receiver_group r in
  Alcotest.(check bool)
    (Printf.sprintf "group %d near fair" g)
    true
    (g >= 2 && g <= 4);
  let kbps = Meter.mean_kbps (Rep.receiver_meter r) ~lo:20. ~hi:60. in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f" kbps)
    true
    (kbps > 100. && kbps < 280.)

let test_replicated_robust_converges () =
  let r =
    run_replicated ~mode:Flid.Robust ~behavior:Flid.Well_behaved ~seconds:60.
      ~bottleneck:Defaults.fair_share_bps
  in
  let kbps = Meter.mean_kbps (Rep.receiver_meter r) ~lo:20. ~hi:60. in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f" kbps)
    true
    (kbps > 100. && kbps < 280.)

let test_replicated_plain_attack () =
  let r =
    run_replicated ~mode:Flid.Plain ~behavior:(Flid.Inflate_after 20.)
      ~seconds:60. ~bottleneck:500_000.
  in
  let kbps = Meter.mean_kbps (Rep.receiver_meter r) ~lo:30. ~hi:60. in
  Alcotest.(check bool)
    (Printf.sprintf "plain inflation hoards (%.0f)" kbps)
    true (kbps > 400.)

let test_replicated_robust_attack_blocked () =
  let r =
    run_replicated ~mode:Flid.Robust ~behavior:(Flid.Inflate_after 20.)
      ~seconds:60. ~bottleneck:500_000.
  in
  (* Fair share for the only session is the whole 500 kbps bottleneck;
     the point is that guessing keys buys nothing beyond the level the
     receiver could sustain anyway: group <= fair level. *)
  let g = Rep.receiver_group r in
  let fair = Layering.fair_level (Defaults.layering ()) ~rate_bps:500_000. in
  Alcotest.(check bool)
    (Printf.sprintf "group %d within entitlement %d" g fair)
    true (g <= fair + 1)

let test_replicated_group_series () =
  let r =
    run_replicated ~mode:Flid.Plain ~behavior:Flid.Well_behaved ~seconds:30.
      ~bottleneck:Defaults.fair_share_bps
  in
  Alcotest.(check bool) "switches recorded" true
    (Mcc_util.Series.length (Rep.group_series r) > 0)

(* --- RLM-like ----------------------------------------------------------- *)

let rlm_config ~mode =
  Rlm.make_config ~id:2 ~base_group:0x3000 ~layering:(Defaults.layering ())
    ~slot_duration:0.25 ~mode ()

let run_rlm ~mode ~seconds ~bottleneck =
  let sim, db, _agent = build ~bottleneck ~mode in
  let config = rlm_config ~mode in
  let src = Dumbbell.add_sender db in
  let dst = Dumbbell.add_receiver db in
  let prng = Prng.create 23 in
  let sender =
    Rlm.sender_start db.Dumbbell.topo ~node:src ~prng:(Prng.split prng) config
  in
  let receiver =
    Rlm.receiver_start db.Dumbbell.topo ~host:dst ~prng:(Prng.split prng)
      config
  in
  Dumbbell.finalize db;
  Sim.run_until sim seconds;
  (sender, receiver)

let test_rlm_thresholds_decay () =
  let config = rlm_config ~mode:Flid.Plain in
  Alcotest.(check (float 1e-9)) "theta_1" 0.25 (Rlm.threshold config ~level:1);
  Alcotest.(check bool) "decaying" true
    (Rlm.threshold config ~level:5 < Rlm.threshold config ~level:2)

let test_rlm_plain_converges () =
  let _, r =
    run_rlm ~mode:Flid.Plain ~seconds:60. ~bottleneck:Defaults.fair_share_bps
  in
  let level = Rlm.receiver_level r in
  Alcotest.(check bool)
    (Printf.sprintf "level %d near fair" level)
    true
    (level >= 2 && level <= 5);
  let kbps = Meter.mean_kbps (Rlm.receiver_meter r) ~lo:20. ~hi:60. in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f" kbps)
    true
    (kbps > 95. && kbps < 350.)

let test_rlm_robust_converges () =
  let _, r =
    run_rlm ~mode:Flid.Robust ~seconds:60. ~bottleneck:Defaults.fair_share_bps
  in
  let kbps = Meter.mean_kbps (Rlm.receiver_meter r) ~lo:20. ~hi:60. in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f" kbps)
    true
    (kbps > 100. && kbps < 350.)

let test_rlm_tolerates_light_loss () =
  (* A bottleneck slightly under level 3's cumulative rate: occasional
     loss below theta keeps the threshold receiver at its level where a
     single-loss protocol would oscillate downward. *)
  let _, r = run_rlm ~mode:Flid.Plain ~seconds:60. ~bottleneck:220_000. in
  let level = Rlm.receiver_level r in
  Alcotest.(check bool)
    (Printf.sprintf "holds level %d under light loss" level)
    true (level >= 2)

let test_rlm_aligned_threshold () =
  Alcotest.(check (float 1e-9)) "0.25 budget" 0.2
    (Rlm.aligned_threshold 0.25);
  Alcotest.(check (float 1e-9)) "no budget" 0. (Rlm.aligned_threshold 0.)

let test_rlm_reliable_variant () =
  (* Reliability extension: 25% repair packets with the matching key
     threshold.  The session functions end to end and the sender's rate
     is visibly inflated by the repair budget. *)
  let sim = Sim.create () in
  let db =
    Dumbbell.create sim ~bottleneck_rate_bps:(2. *. Defaults.fair_share_bps) ()
  in
  let _agent = Router_agent.attach db.Dumbbell.topo db.Dumbbell.right in
  let repair = 0.25 in
  let config =
    Rlm.make_config ~id:4 ~base_group:0x3800 ~repair_fraction:repair
      ~base_threshold:(Rlm.aligned_threshold repair) ~threshold_decay:1.0
      ~layering:(Defaults.layering ()) ~slot_duration:0.25 ~mode:Flid.Robust ()
  in
  let src = Dumbbell.add_sender db in
  let sender =
    Rlm.sender_start db.Dumbbell.topo ~node:src
      ~prng:(Prng.create 71) config
  in
  let host = Dumbbell.add_receiver db in
  let receiver =
    Rlm.receiver_start db.Dumbbell.topo ~host ~prng:(Prng.create 72) config
  in
  Dumbbell.finalize db;
  Sim.run_until sim 40.;
  ignore sender;
  let kbps = Meter.mean_kbps (Rlm.receiver_meter receiver) ~lo:15. ~hi:40. in
  Alcotest.(check bool)
    (Printf.sprintf "reliable session works (%.0f kbps)" kbps)
    true (kbps > 100.);
  Alcotest.(check bool) "holds a level" true (Rlm.receiver_level receiver >= 1)

let test_rlm_share_overhead_exceeds_xor () =
  (* The paper: Shamir components cannot be reused across levels, so the
     threshold scheme's overhead must exceed the XOR scheme's ~0.8%. *)
  let s, _ =
    run_rlm ~mode:Flid.Robust ~seconds:20. ~bottleneck:Defaults.fair_share_bps
  in
  let ratio =
    float_of_int (Rlm.share_overhead_bits s) /. float_of_int (Rlm.data_bits s)
  in
  Alcotest.(check bool)
    (Printf.sprintf "share overhead %.2f%%" (100. *. ratio))
    true
    (ratio > 0.008)

let suite =
  ( "protocols",
    [
      Alcotest.test_case "replicated plain converges" `Slow
        test_replicated_plain_converges;
      Alcotest.test_case "replicated robust converges" `Slow
        test_replicated_robust_converges;
      Alcotest.test_case "replicated plain attack" `Slow
        test_replicated_plain_attack;
      Alcotest.test_case "replicated robust attack blocked" `Slow
        test_replicated_robust_attack_blocked;
      Alcotest.test_case "replicated series" `Slow test_replicated_group_series;
      Alcotest.test_case "rlm thresholds" `Quick test_rlm_thresholds_decay;
      Alcotest.test_case "rlm plain converges" `Slow test_rlm_plain_converges;
      Alcotest.test_case "rlm robust converges" `Slow test_rlm_robust_converges;
      Alcotest.test_case "rlm tolerates light loss" `Slow
        test_rlm_tolerates_light_loss;
      Alcotest.test_case "rlm aligned threshold" `Quick
        test_rlm_aligned_threshold;
      Alcotest.test_case "rlm reliable variant" `Slow test_rlm_reliable_variant;
      Alcotest.test_case "rlm share overhead" `Slow
        test_rlm_share_overhead_exceeds_xor;
    ] )
