(* Causal packet lineage (Mcc_obs.Lineage): the determinism contract —
   a run's hop records are a pure function of the spec, so the summary
   JSON is byte-identical across repeated runs, across scheduler
   backends, and across domains (the --jobs axis: a worker domain's
   records match the main domain's) — plus pooled-record reuse (steady
   state allocates nothing) and the sentinel's zero-cost-off rule. *)

module Lineage = Mcc_obs.Lineage
module Json = Mcc_obs.Json
module Runner = Mcc_core.Runner
module Spec = Mcc_core.Spec
module Scheduler = Mcc_engine.Scheduler

(* A small matrix attack cell: 12 simulated seconds of persistent
   inflation against DELTA+SIGMA — long enough to cross the attack
   onset and collect key_reject cases, short enough for a test. *)
let cell_spec () =
  Spec.scale_time (Spec.Adversary Spec.default_adversary) ~factor:0.1

let lineage_json ?sched () =
  let inst = Runner.run_spec_instrumented ?sched (cell_spec ()) in
  Json.to_string (Lineage.to_json inst.Runner.i_lineage)

let has needle s =
  let nl = String.length needle in
  let rec go i =
    i + nl <= String.length s && (String.sub s i nl = needle || go (i + 1))
  in
  go 0

let test_repeatable () =
  let a = lineage_json () and b = lineage_json () in
  Alcotest.(check string) "byte-identical across repeated runs" a b;
  Alcotest.(check bool) "records sigma subscribe hops" true
    (has "sigma.subscribe" a);
  Alcotest.(check bool) "preserves a key_reject case" true
    (has "key_reject" a)

let test_sched_independent () =
  let heap = lineage_json ~sched:Scheduler.heap ()
  and wheel = lineage_json ~sched:Scheduler.wheel () in
  Alcotest.(check string) "heap and wheel runs byte-identical" heap wheel

let test_domain_independent () =
  (* The --jobs axis: Lineage state is domain-local, so a worker
     domain running the same spec must produce the same bytes the main
     domain does. *)
  let main = lineage_json () in
  let worker = Domain.join (Domain.spawn (fun () -> lineage_json ())) in
  Alcotest.(check string) "worker-domain run byte-identical" main worker

let test_disabled_sentinel () =
  Lineage.reset ();
  let t = Lineage.fresh () in
  Alcotest.(check bool) "fresh is the sentinel when off" true
    (t == Lineage.none ());
  Lineage.set_origin t ~session:1 ~level:2 ~time:3.;
  Lineage.hop t ~time:4. "link.tx";
  Lineage.retire t ~time:5.;
  Lineage.release t;
  Alcotest.(check (list (pair (float 0.) string))) "mutators no-op" []
    (Lineage.hops t);
  Alcotest.(check int) "nothing allocated" 0 (Lineage.allocated ());
  Alcotest.(check bool) "clone of the sentinel is the sentinel" true
    (Lineage.clone t == Lineage.none ())

let test_pool_reuse () =
  Lineage.enable ();
  let cycle () =
    let t = Lineage.fresh () in
    Lineage.set_origin t ~session:1 ~level:1 ~time:0.;
    Lineage.hop t ~time:0.1 "link.tx";
    Lineage.hop t ~time:0.2 "link.rx";
    Lineage.retire t ~time:0.3;
    Lineage.release t
  in
  for _ = 1 to 5 do cycle () done;
  let warm = Lineage.allocated () in
  Alcotest.(check bool) "pool warmed with at least one record" true (warm >= 1);
  for _ = 1 to 500 do cycle () done;
  Alcotest.(check int) "steady state allocates nothing" warm
    (Lineage.allocated ());
  Alcotest.(check bool) "released records sit in the pool" true
    (Lineage.pooled () >= 1);
  (* Clones are pooled records too: a fan-out burst reuses them. *)
  let t = Lineage.fresh () in
  Lineage.hop t ~time:0.1 "node.fwd";
  let c = Lineage.clone t in
  Alcotest.(check (list (pair (float 1e-9) string))) "clone copies hops"
    (Lineage.hops t) (Lineage.hops c);
  Lineage.release t;
  Lineage.release c;
  let after_clone = Lineage.allocated () in
  for _ = 1 to 100 do
    let t = Lineage.fresh () in
    let c = Lineage.clone t in
    Lineage.release t;
    Lineage.release c
  done;
  Alcotest.(check int) "clone bursts reuse the pool" after_clone
    (Lineage.allocated ());
  Lineage.disable ();
  Lineage.reset ()

let test_hop_cap () =
  Lineage.enable ();
  let t = Lineage.fresh () in
  for i = 1 to 40 do
    Lineage.hop t ~time:(float_of_int i) "link.tx"
  done;
  Alcotest.(check bool) "hop buffer is bounded" true
    (List.length (Lineage.hops t) < 40);
  Alcotest.(check int) "overflow counted as lost" 40
    (List.length (Lineage.hops t) + Lineage.lost t);
  Lineage.release t;
  Lineage.disable ();
  Lineage.reset ()

let suite =
  ( "lineage",
    [
      Alcotest.test_case "repeatable run" `Quick test_repeatable;
      Alcotest.test_case "scheduler-independent" `Quick test_sched_independent;
      Alcotest.test_case "domain-independent" `Quick test_domain_independent;
      Alcotest.test_case "disabled sentinel" `Quick test_disabled_sentinel;
      Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
      Alcotest.test_case "hop cap" `Quick test_hop_cap;
    ] )
