(* System-level property tests: invariants that must hold for arbitrary
   parameters, checked by building small simulations inside qcheck. *)

module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Link = Mcc_net.Link
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload
module Multicast = Mcc_net.Multicast
module Layered = Mcc_delta.Layered
module Prng = Mcc_util.Prng

(* Conservation: on any link, every packet handed to [send] is either
   transmitted or dropped, never both, never lost track of. *)
let prop_link_conservation =
  QCheck.Test.make ~name:"link conserves packets" ~count:100
    QCheck.(
      triple (int_range 1 60) (int_range 100 2000) (int_range 500 20_000))
    (fun (burst, size, buffer) ->
      let sim = Sim.create () in
      let topo = Topology.create sim in
      let a = Topology.add_node topo Node.Host in
      let b = Topology.add_node topo Node.Host in
      let ab, _ =
        Topology.connect topo a b ~rate_bps:100_000. ~delay_s:0.001
          ~buffer_bytes:buffer ()
      in
      Topology.compute_routes topo;
      let received = ref 0 in
      Node.set_unicast_handler b (fun _ -> incr received);
      for _ = 1 to burst do
        Node.originate a
          (Packet.make ~src:a.Node.id ~dst:(Packet.Unicast b.Node.id) ~size
             Payload.Raw)
      done;
      Sim.run sim;
      !received = ab.Link.tx_packets
      && burst = !received + ab.Link.drops
      && ab.Link.drop_bytes = ab.Link.drops * size)

(* Multicast: every subscribed receiver gets each packet exactly once,
   unsubscribed receivers get nothing, regardless of which subset
   subscribes. *)
let prop_multicast_exactly_once =
  QCheck.Test.make ~name:"multicast delivers exactly once to members"
    ~count:100
    QCheck.(pair (int_range 2 6) (int_range 0 63))
    (fun (receivers, member_mask) ->
      let sim = Sim.create () in
      let topo = Topology.create sim in
      let src = Topology.add_node topo Node.Host in
      let r1 = Topology.add_node topo Node.Core_router in
      let r2 = Topology.add_node topo Node.Edge_router in
      let connect a b =
        ignore
          (Topology.connect topo a b ~rate_bps:10e6 ~delay_s:0.002
             ~buffer_bytes:1_000_000 ())
      in
      connect src r1;
      connect r1 r2;
      let hosts =
        List.init receivers (fun _ ->
            let h = Topology.add_node topo Node.Host in
            connect r2 h;
            h)
      in
      Topology.compute_routes topo;
      let group = 4242 in
      Topology.register_group topo ~group ~source:src;
      let counters =
        List.mapi
          (fun i host ->
            let member = member_mask land (1 lsl i) <> 0 in
            let count = ref 0 in
            Node.subscribe_local host ~group (fun _ -> incr count);
            if member then Multicast.host_join topo ~host ~group;
            (member, count))
          hosts
      in
      Sim.run_until sim 0.5;
      let packets = 5 in
      for _ = 1 to packets do
        Node.originate src
          (Packet.make ~src:src.Node.id ~dst:(Packet.Multicast group)
             ~size:300 Payload.Raw)
      done;
      Sim.run_until sim 1.0;
      List.for_all
        (fun (member, count) -> !count = if member then packets else 0)
        counters)

(* DELTA sender: the advertised key set for each group always contains
   the top key, the decrease key below the maximal group, and the
   increase key exactly when authorized. *)
let prop_valid_keys_structure =
  QCheck.Test.make ~name:"layered valid_keys structure" ~count:200
    QCheck.(pair small_int (int_range 0 255))
    (fun (seed, upgrade_mask) ->
      let n = 8 in
      let prng = Prng.create (seed + 17) in
      let upgrades = Array.init n (fun i -> i >= 1 && upgrade_mask land (1 lsl i) <> 0) in
      let sender = Layered.sender_create ~prng ~width:16 ~groups:n ~upgrades in
      let keys = Layered.sender_keys sender in
      List.for_all
        (fun g ->
          let set = Layered.valid_keys keys ~group:g in
          let has_top = List.mem keys.Layered.top.(g - 1) set in
          let size_ok =
            let expected =
              1
              + (if g < n then 1 else 0)
              + (if upgrades.(g - 1) then 1 else 0)
            in
            List.length set = expected
          in
          has_top && size_ok)
        (List.init n (fun i -> i + 1)))

(* The simulation executes exactly the events that were scheduled and
   not cancelled, in spite of arbitrary interleavings. *)
let prop_sim_executes_uncancelled =
  QCheck.Test.make ~name:"sim executes exactly uncancelled events" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (pair (float_bound_inclusive 10.) bool))
    (fun specs ->
      let sim = Sim.create () in
      let expected = ref 0 in
      List.iter
        (fun (at, cancel) ->
          let h = Sim.schedule sim ~at (fun () -> ()) in
          if cancel then Sim.cancel h else incr expected)
        specs;
      Sim.run sim;
      Sim.events_executed sim = !expected)

(* Meter: mean over the full window equals total bytes scaled, for any
   record pattern. *)
let prop_meter_mean_consistent =
  QCheck.Test.make ~name:"meter mean equals totals" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 1 5_000))
    (fun sizes ->
      (* Shrinking may go below the generator's size bound. *)
      QCheck.assume (sizes <> []);
      let m = Mcc_util.Meter.create () in
      List.iteri
        (fun i b ->
          Mcc_util.Meter.record m ~time:(float_of_int i *. 0.25) ~bytes:b)
        sizes;
      let horizon =
        (* round up to a whole second so every record falls inside *)
        Float.of_int
          (int_of_float (ceil (0.25 *. float_of_int (List.length sizes))))
      in
      let horizon = Float.max 1. horizon in
      let total = List.fold_left ( + ) 0 sizes in
      let mean = Mcc_util.Meter.mean_kbps m ~lo:0. ~hi:horizon in
      let expected = float_of_int (total * 8) /. horizon /. 1000. in
      abs_float (mean -. expected) < 1e-6 *. (1. +. expected))

let suite =
  ( "properties",
    [
      QCheck_alcotest.to_alcotest prop_link_conservation;
      QCheck_alcotest.to_alcotest prop_multicast_exactly_once;
      QCheck_alcotest.to_alcotest prop_valid_keys_structure;
      QCheck_alcotest.to_alcotest prop_sim_executes_uncancelled;
      QCheck_alcotest.to_alcotest prop_meter_mean_consistent;
    ] )
