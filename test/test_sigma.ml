module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload
module Multicast = Mcc_net.Multicast
module Tuple = Mcc_sigma.Tuple
module Special = Mcc_sigma.Special
module Router_agent = Mcc_sigma.Router_agent
module Client = Mcc_sigma.Client
module Messages = Mcc_sigma.Messages

(* sender host -- edge router -- two receiver hosts *)
type env = {
  sim : Sim.t;
  topo : Topology.t;
  src : Node.t;
  router : Node.t;
  d1 : Node.t;
  d2 : Node.t;
  agent : Router_agent.t;
}

let minimal = 900
let upper = 901
let slot_duration = 0.25

let make_env () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let src = Topology.add_node topo Node.Host in
  let router = Topology.add_node topo Node.Edge_router in
  let d1 = Topology.add_node topo Node.Host in
  let d2 = Topology.add_node topo Node.Host in
  let connect a b =
    ignore
      (Topology.connect topo a b ~rate_bps:10_000_000. ~delay_s:0.002
         ~buffer_bytes:100_000 ())
  in
  connect src router;
  connect router d1;
  connect router d2;
  Topology.compute_routes topo;
  Topology.register_group topo ~group:minimal ~source:src;
  Topology.register_group topo ~group:upper ~source:src;
  let agent = Router_agent.attach topo router in
  (* The router must be on the minimal group's tree to receive specials:
     emulate an interested downstream by grafting the router itself via a
     local subscription entry. *)
  Node.subscribe_local router ~group:minimal (fun _ -> ());
  Multicast.graft topo ~node:router ~group:minimal
    ~down:(Option.get (Hashtbl.find_opt router.Node.fib d1.Node.id));
  Multicast.prune topo ~node:router ~group:minimal
    ~down:(Option.get (Hashtbl.find_opt router.Node.fib d1.Node.id));
  { sim; topo; src; router; d1; d2; agent }

(* Distribute keys for [slot], valid keys [keys] per group. *)
let distribute env ~slot ~tuples =
  ignore
    (Special.distribute env.topo ~sender:env.src ~session:1 ~via_group:minimal
       ~width:16 ~slot ~slot_duration ~tuples ())

let tuples_for ~slot ~minimal_key ~upper_key =
  [
    Tuple.make ~group:minimal ~slot ~keys:[ minimal_key ] ~minimal:true;
    Tuple.make ~group:upper ~slot ~keys:[ upper_key ] ~minimal:false;
  ]

let test_keystore_and_grant () =
  let env = make_env () in
  distribute env ~slot:2 ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  Alcotest.(check bool) "groups known" true
    (List.mem minimal (Router_agent.known_groups env.agent)
     && List.mem upper (Router_agent.known_groups env.agent));
  Alcotest.(check bool) "not active yet" false
    (Router_agent.iface_active env.agent ~group:minimal ~toward:env.d1.Node.id);
  Router_agent.handle_subscribe env.agent ~receiver:env.d1.Node.id ~slot:2
    ~pairs:[ (minimal, 0xAA) ];
  Alcotest.(check bool) "active after valid key" true
    (Router_agent.iface_active env.agent ~group:minimal ~toward:env.d1.Node.id);
  Alcotest.(check bool) "other iface untouched" false
    (Router_agent.iface_active env.agent ~group:minimal ~toward:env.d2.Node.id)

let test_invalid_key_denied_and_tallied () =
  let env = make_env () in
  distribute env ~slot:2 ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  Router_agent.handle_subscribe env.agent ~receiver:env.d1.Node.id ~slot:2
    ~pairs:[ (upper, 0x11); (upper, 0x22); (upper, 0x22) ];
  Alcotest.(check bool) "denied" false
    (Router_agent.iface_active env.agent ~group:upper ~toward:env.d1.Node.id);
  Alcotest.(check int) "distinct guesses counted" 2
    (Router_agent.guess_count env.agent ~group:upper ~slot:2)

let test_grant_expires () =
  let env = make_env () in
  distribute env ~slot:2 ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  Router_agent.handle_subscribe env.agent ~receiver:env.d1.Node.id ~slot:2
    ~pairs:[ (upper, 0xBB) ];
  Alcotest.(check bool) "granted" true
    (Router_agent.iface_active env.agent ~group:upper ~toward:env.d1.Node.id);
  (* Slot 2 ends roughly 3 slot durations after distribution; the grace
     window for a newly activated interface adds two more slots.  With no
     further keys the grant must lapse after that. *)
  Sim.run_until env.sim 3.0;
  Alcotest.(check bool) "expired without fresh keys" false
    (Router_agent.iface_active env.agent ~group:upper ~toward:env.d1.Node.id)

let test_unsubscribe_immediate () =
  let env = make_env () in
  distribute env ~slot:2 ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  Router_agent.handle_subscribe env.agent ~receiver:env.d1.Node.id ~slot:2
    ~pairs:[ (upper, 0xBB) ];
  Router_agent.handle_unsubscribe env.agent ~receiver:env.d1.Node.id
    ~groups:[ upper ];
  Alcotest.(check bool) "inactive immediately" false
    (Router_agent.iface_active env.agent ~group:upper ~toward:env.d1.Node.id)

let test_session_join_grace_and_lockout () =
  let env = make_env () in
  distribute env ~slot:2 ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  Router_agent.handle_session_join env.agent ~receiver:env.d1.Node.id
    ~group:minimal;
  Alcotest.(check bool) "admitted keyless" true
    (Router_agent.iface_active env.agent ~group:minimal ~toward:env.d1.Node.id);
  (* Never presents a key: grace (3 slots) expires, lockout begins. *)
  Sim.run_until env.sim 1.2;
  Alcotest.(check bool) "grace expired" false
    (Router_agent.iface_active env.agent ~group:minimal ~toward:env.d1.Node.id);
  Router_agent.handle_session_join env.agent ~receiver:env.d1.Node.id
    ~group:minimal;
  Alcotest.(check bool) "locked out" false
    (Router_agent.iface_active env.agent ~group:minimal ~toward:env.d1.Node.id);
  (* After the lockout passes a fresh join is admitted again. *)
  Sim.run_until env.sim 2.0;
  Router_agent.handle_session_join env.agent ~receiver:env.d1.Node.id
    ~group:minimal;
  Alcotest.(check bool) "re-admitted after lockout" true
    (Router_agent.iface_active env.agent ~group:minimal ~toward:env.d1.Node.id)

let test_session_join_to_non_minimal_rejected () =
  let env = make_env () in
  distribute env ~slot:2 ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  Router_agent.handle_session_join env.agent ~receiver:env.d1.Node.id
    ~group:upper;
  Alcotest.(check bool) "inflation via session-join blocked" false
    (Router_agent.iface_active env.agent ~group:upper ~toward:env.d1.Node.id)

let test_filter_blocks_data () =
  let env = make_env () in
  distribute env ~slot:2 ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  let got = ref 0 in
  Node.subscribe_local env.d1 ~group:upper (fun _ -> incr got);
  (* Put the interface on the tree WITHOUT a grant: the SIGMA filter must
     still block forwarding. *)
  Multicast.graft env.topo ~node:env.router ~group:upper
    ~down:(Option.get (Hashtbl.find_opt env.router.Node.fib env.d1.Node.id));
  Node.originate env.src
    (Packet.make ~src:env.src.Node.id ~dst:(Packet.Multicast upper) ~size:500
       Payload.Raw);
  Sim.run_until env.sim 0.4;
  Alcotest.(check int) "blocked by filter" 0 !got;
  (* Now grant and retry. *)
  Router_agent.handle_subscribe env.agent ~receiver:env.d1.Node.id ~slot:2
    ~pairs:[ (upper, 0xBB) ];
  Node.originate env.src
    (Packet.make ~src:env.src.Node.id ~dst:(Packet.Multicast upper) ~size:500
       Payload.Raw);
  Sim.run_until env.sim 0.6;
  Alcotest.(check int) "forwarded once granted" 1 !got

let test_client_subscribe_ack_retransmit () =
  let env = make_env () in
  distribute env ~slot:2 ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  let client = Client.create ~width:16 env.topo ~host:env.d1 in
  Client.subscribe client ~slot:2 ~pairs:[ (minimal, 0xAA) ];
  Sim.run_until env.sim 1.0;
  Alcotest.(check bool) "granted via message path" true
    (Router_agent.iface_active env.agent ~group:minimal ~toward:env.d1.Node.id);
  (* Ack received: exactly one transmission, no retries. *)
  Alcotest.(check int) "single send" 1 (Client.messages_sent client);
  Alcotest.(check bool) "pairs recorded" true
    (List.mem (minimal, 0xAA) (Client.acked_pairs client ~slot:2))

let test_client_retransmits_without_ack () =
  let env = make_env () in
  (* No distribution: router has no keys, never acks (nothing valid). *)
  let client =
    Client.create ~width:16 ~retransmit_timeout:0.05 ~max_retransmits:3
      env.topo ~host:env.d1
  in
  Client.subscribe client ~slot:2 ~pairs:[ (minimal, 0xAA) ];
  Sim.run_until env.sim 1.0;
  Alcotest.(check int) "initial + 3 retries" 4 (Client.messages_sent client)

let test_suppression_between_receivers () =
  (* Two receivers share a LAN interface: once the first subscription is
     acked, the second receiver's identical subscription is suppressed. *)
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let src = Topology.add_node topo Node.Host in
  let router = Topology.add_node topo Node.Edge_router in
  let lan = Topology.add_node topo Node.Lan in
  let a = Topology.add_node topo Node.Host in
  let b = Topology.add_node topo Node.Host in
  let connect x y =
    ignore
      (Topology.connect topo x y ~rate_bps:10_000_000. ~delay_s:0.001
         ~buffer_bytes:100_000 ())
  in
  connect src router;
  connect router lan;
  connect lan a;
  connect lan b;
  Topology.compute_routes topo;
  Topology.register_group topo ~group:minimal ~source:src;
  let agent = Router_agent.attach topo router in
  let ca = Client.create ~width:16 topo ~host:a in
  let cb = Client.create ~width:16 topo ~host:b in
  (* Real admission flow: the session-join grafts the router onto the
     source tree, so the subsequent special packets reach it. *)
  Client.session_join ca ~group:minimal;
  Sim.run_until sim 0.1;
  ignore
    (Special.distribute topo ~sender:src ~session:1 ~via_group:minimal
       ~width:16 ~slot:2 ~slot_duration
       ~tuples:[ Tuple.make ~group:minimal ~slot:2 ~keys:[ 0xAA ] ~minimal:true ]
       ());
  Sim.run_until sim 0.3;
  Client.subscribe ca ~slot:2 ~pairs:[ (minimal, 0xAA) ];
  Sim.run_until sim 0.5;
  Client.subscribe cb ~slot:2 ~pairs:[ (minimal, 0xAA) ];
  Sim.run_until sim 1.0;
  Alcotest.(check bool) "granted" true
    (Router_agent.iface_active agent ~group:minimal ~toward:a.Node.id);
  Alcotest.(check int) "first sent join + subscribe" 2
    (Client.messages_sent ca);
  Alcotest.(check int) "second suppressed" 0 (Client.messages_sent cb)

(* Collusion resistance (paper Section 4.2): with interface-specific
   keys the router pads each interface's components, so the lower key a
   receiver legitimately reconstructs validates only on its own
   interface. *)
let test_interface_keys_block_collusion () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let src = Topology.add_node topo Node.Host in
  let router = Topology.add_node topo Node.Edge_router in
  let d1 = Topology.add_node topo Node.Host in
  let d2 = Topology.add_node topo Node.Host in
  let connect a b =
    ignore
      (Topology.connect topo a b ~rate_bps:10_000_000. ~delay_s:0.002
         ~buffer_bytes:100_000 ())
  in
  connect src router;
  connect router d1;
  connect router d2;
  Topology.compute_routes topo;
  Topology.register_group topo ~group:minimal ~source:src;
  Topology.register_group topo ~group:upper ~source:src;
  let config =
    { Router_agent.default_config with Router_agent.interface_keys = true }
  in
  let agent = Router_agent.attach ~config topo router in
  Node.subscribe_local router ~group:minimal (fun _ -> ());
  Multicast.graft topo ~node:router ~group:minimal
    ~down:(Option.get (Hashtbl.find_opt router.Node.fib d1.Node.id));
  Multicast.prune topo ~node:router ~group:minimal
    ~down:(Option.get (Hashtbl.find_opt router.Node.fib d1.Node.id));
  (* Session of two consecutive groups; upper keys lambda_1, lambda_2. *)
  let lambda1 = 0x1111 and lambda2 = 0x2222 in
  ignore
    (Special.distribute topo ~sender:src ~session:1 ~via_group:minimal
       ~width:16 ~slot:2 ~slot_duration
       ~tuples:
         [
           Tuple.make ~group:minimal ~slot:2 ~keys:[ lambda1 ] ~minimal:true;
           Tuple.make ~group:(minimal + 1) ~slot:2 ~keys:[ lambda2 ]
             ~minimal:false;
         ]
       ());
  Sim.run_until sim 0.2;
  (* The router padded interface 1's components with p1 (group 1) and p2
     (group 2): receiver 1's lower keys. *)
  let link1 =
    (Option.get (Hashtbl.find_opt router.Node.fib d1.Node.id)).Mcc_net.Link.id
  in
  let p1 = 0x0A0A and p2 = 0x0505 in
  Router_agent.note_pad agent ~link_id:link1 ~group:minimal ~guarded_slot:2
    ~pad:p1;
  Router_agent.note_pad agent ~link_id:link1 ~group:(minimal + 1)
    ~guarded_slot:2 ~pad:p2;
  let lower1 = lambda1 lxor p1 in
  let lower2 = lambda2 lxor p1 lxor p2 in
  (* Receiver 1 presents its own lower keys: accepted. *)
  Router_agent.handle_subscribe agent ~receiver:d1.Node.id ~slot:2
    ~pairs:[ (minimal, lower1); (minimal + 1, lower2) ];
  Alcotest.(check bool) "own interface, group 1" true
    (Router_agent.iface_active agent ~group:minimal ~toward:d1.Node.id);
  Alcotest.(check bool) "own interface, group 2" true
    (Router_agent.iface_active agent ~group:(minimal + 1) ~toward:d1.Node.id);
  (* A colluder on interface 2 replays receiver 1's lower keys: its own
     interface never forwarded those components, so they are garbage
     there. *)
  Router_agent.handle_subscribe agent ~receiver:d2.Node.id ~slot:2
    ~pairs:[ (minimal, lower1); (minimal + 1, lower2) ];
  Alcotest.(check bool) "collusion blocked, group 1" false
    (Router_agent.iface_active agent ~group:minimal ~toward:d2.Node.id);
  Alcotest.(check bool) "collusion blocked, group 2" false
    (Router_agent.iface_active agent ~group:(minimal + 1) ~toward:d2.Node.id);
  Alcotest.(check bool) "replayed keys tallied" true
    (Router_agent.guess_count agent ~group:minimal ~slot:2 > 0)

(* --- Router_agent.stats -------------------------------------------------- *)

(* The keyed subscribe path: every decision the handler takes must show
   up in the aggregate stats record. *)
let test_stats_subscribe_path () =
  let env = make_env () in
  distribute env ~slot:2
    ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  let s0 = Router_agent.stats env.agent in
  Alcotest.(check bool) "specials counted" true (s0.Router_agent.special_packets > 0);
  Alcotest.(check int) "quiet before traffic" 0
    (s0.Router_agent.subscriptions + s0.Router_agent.acks
    + s0.Router_agent.distinct_guesses);
  (* One valid key, one guess. *)
  Router_agent.handle_subscribe env.agent ~receiver:env.d1.Node.id ~slot:2
    ~pairs:[ (minimal, 0xAA); (upper, 0x11) ];
  let s1 = Router_agent.stats env.agent in
  Alcotest.(check int) "one subscription" 1 s1.Router_agent.subscriptions;
  Alcotest.(check int) "one key accepted" 1 s1.Router_agent.keys_accepted;
  Alcotest.(check int) "one key rejected" 1 s1.Router_agent.keys_rejected;
  Alcotest.(check int) "acked the valid part" 1 s1.Router_agent.acks;
  Alcotest.(check int) "newly active iface gets upgrade grace" 1
    s1.Router_agent.upgrade_graces;
  Alcotest.(check int) "the bad key is a guess" 1
    s1.Router_agent.distinct_guesses;
  (* Replaying the same wrong key is rejected again but is not a new
     distinct guess; an all-invalid subscribe earns no ack. *)
  Router_agent.handle_subscribe env.agent ~receiver:env.d1.Node.id ~slot:2
    ~pairs:[ (upper, 0x11) ];
  let s2 = Router_agent.stats env.agent in
  Alcotest.(check int) "second subscription" 2 s2.Router_agent.subscriptions;
  Alcotest.(check int) "rejected again" 2 s2.Router_agent.keys_rejected;
  Alcotest.(check int) "still one distinct guess" 1
    s2.Router_agent.distinct_guesses;
  Alcotest.(check int) "no ack for an all-invalid subscribe" 1
    s2.Router_agent.acks;
  Router_agent.handle_unsubscribe env.agent ~receiver:env.d1.Node.id
    ~groups:[ minimal ];
  Alcotest.(check int) "unsubscribe counted" 1
    (Router_agent.stats env.agent).Router_agent.unsubscribes

(* The keyless session-join path: grace admission, duplicate
   suppression while the interface is active, and the lockout when the
   grace lapses without a key. *)
let test_stats_join_suppression_and_lockout () =
  let env = make_env () in
  distribute env ~slot:2
    ~tuples:(tuples_for ~slot:2 ~minimal_key:0xAA ~upper_key:0xBB);
  Sim.run_until env.sim 0.2;
  Router_agent.handle_session_join env.agent ~receiver:env.d1.Node.id
    ~group:minimal;
  let s1 = Router_agent.stats env.agent in
  Alcotest.(check int) "grace admission" 1 s1.Router_agent.grace_admissions;
  (* The interface already forwards the group: a repeat join must be
     suppressed, not re-granted. *)
  Router_agent.handle_session_join env.agent ~receiver:env.d1.Node.id
    ~group:minimal;
  let s2 = Router_agent.stats env.agent in
  Alcotest.(check int) "duplicate join suppressed"
    (s1.Router_agent.suppressed_duplicates + 1)
    s2.Router_agent.suppressed_duplicates;
  Alcotest.(check int) "no second admission" 1
    s2.Router_agent.grace_admissions;
  (* Never presents a key: when the sweep revokes the keyless grant it
     starts a lockout, and that shows in the stats. *)
  Sim.run_until env.sim 1.2;
  let s3 = Router_agent.stats env.agent in
  Alcotest.(check bool) "lockout counted" true (s3.Router_agent.lockouts >= 1)

let test_tuple_wire_bytes () =
  let t = Tuple.make ~group:1 ~slot:1 ~keys:[ 1; 2; 3 ] ~minimal:false in
  (* 4 (addr) + 1 (flags) + 3 x 2 (16-bit keys). *)
  Alcotest.(check int) "tuple bytes" 11 (Tuple.wire_bytes ~width:16 t);
  Alcotest.(check int) "subscribe bytes" (28 + 4 + 6)
    (Messages.subscribe_bytes ~width:16 [ (1, 2) ])

let suite =
  ( "sigma",
    [
      Alcotest.test_case "keystore and grant" `Quick test_keystore_and_grant;
      Alcotest.test_case "invalid key denied" `Quick
        test_invalid_key_denied_and_tallied;
      Alcotest.test_case "grant expires" `Quick test_grant_expires;
      Alcotest.test_case "unsubscribe immediate" `Quick
        test_unsubscribe_immediate;
      Alcotest.test_case "session-join grace & lockout" `Quick
        test_session_join_grace_and_lockout;
      Alcotest.test_case "session-join non-minimal" `Quick
        test_session_join_to_non_minimal_rejected;
      Alcotest.test_case "filter blocks data" `Quick test_filter_blocks_data;
      Alcotest.test_case "client subscribe/ack" `Quick
        test_client_subscribe_ack_retransmit;
      Alcotest.test_case "client retransmits" `Quick
        test_client_retransmits_without_ack;
      Alcotest.test_case "ack suppression on LAN" `Quick
        test_suppression_between_receivers;
      Alcotest.test_case "interface keys block collusion" `Quick
        test_interface_keys_block_collusion;
      Alcotest.test_case "stats: subscribe path" `Quick
        test_stats_subscribe_path;
      Alcotest.test_case "stats: join suppression & lockout" `Quick
        test_stats_join_suppression_and_lockout;
      Alcotest.test_case "wire sizes" `Quick test_tuple_wire_bytes;
    ] )
