(* Attack subsystem tests: the catalogue's declarative shape, instance
   behaviour driven directly (pulse gating, guess budget and cursor,
   stale replay, trace signatures), the escalating session-join lockout
   the matrix evaluation motivated, full matrix cells end to end, and
   byte-identical matrix sink output across job counts. *)

module Spec = Mcc_core.Spec
module Sink = Mcc_core.Sink
module E = Mcc_core.Experiments
module Flid = Mcc_mcast.Flid
module Key = Mcc_delta.Key
module Prng = Mcc_util.Prng
module Json = Mcc_obs.Json
module Tracer = Mcc_obs.Tracer
module Strategy = Mcc_attack.Strategy
module Matrix = Mcc_attack.Matrix
module Scorecard = Mcc_attack.Scorecard
module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Multicast = Mcc_net.Multicast
module Tuple = Mcc_sigma.Tuple
module Special = Mcc_sigma.Special
module Router_agent = Mcc_sigma.Router_agent

let contains ~needle haystack =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || find (i + 1))
  in
  find 0

(* --- catalogue shape ---------------------------------------------------- *)

let test_catalogue () =
  let cat = Strategy.catalogue () in
  Alcotest.(check int) "six strategies" 6 (List.length cat);
  let names = List.map (fun (s : Strategy.t) -> s.Strategy.name) cat in
  Alcotest.(check int) "names unique" 6
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun (s : Strategy.t) ->
      Alcotest.(check string)
        (s.Strategy.name ^ " named after its kind")
        (Spec.attack_str s.Strategy.kind)
        s.Strategy.name;
      Alcotest.(check bool) (s.Strategy.name ^ " documented") true
        (s.Strategy.paper <> "" && s.Strategy.doc <> ""
        && s.Strategy.expected <> "");
      (* of_kind must hand back the strategy the catalogue lists. *)
      Alcotest.(check string)
        (s.Strategy.name ^ " of_kind round-trip")
        s.Strategy.name
        (Strategy.of_kind s.Strategy.kind).Strategy.name)
    cat

(* --- instance behaviour ------------------------------------------------- *)

let instantiate kind ~attack_at =
  (Strategy.of_kind kind).Strategy.instantiate ~attack_at ~slot_duration:0.25
    ~prng:(Prng.create 99)

(* A synthetic subscription context: entitled to the minimal group of a
   five-group session. *)
let ctx ?(slot = 10) ?(history = []) ~prng () =
  {
    Flid.actx_time = 100.;
    actx_slot = slot;
    actx_entitled = [ (900, 0xAA) ];
    actx_groups = [ 900; 901; 902; 903; 904 ];
    actx_fresh_key = (fun () -> Key.nonce prng ~width:16);
    actx_history = history;
  }

let test_pulse_gating () =
  let inst =
    instantiate (Spec.Pulse_inflation { period_s = 10.; duty = 0.3 })
      ~attack_at:30.
  in
  let active time = inst.Strategy.active ~time in
  Alcotest.(check bool) "dormant before attack_at" false (active 29.9);
  Alcotest.(check bool) "on at burst start" true (active 30.0);
  Alcotest.(check bool) "on inside the duty window" true (active 32.9);
  Alcotest.(check bool) "off after the duty window" false (active 33.1);
  Alcotest.(check bool) "on again next period" true (active 40.5);
  Alcotest.(check bool) "off again next period" false (active 43.5)

let test_guess_budget_and_cursor () =
  let prng = Prng.create 5 in
  let inst =
    instantiate (Spec.Key_guessing { budget_per_slot = 2 }) ~attack_at:30.
  in
  let guessed_groups sub =
    List.filter_map
      (fun (g, _) -> if g = 900 then None else Some g)
      sub.Flid.sub_pairs
  in
  (match inst.Strategy.on_slot (ctx ~prng ()) with
  | [ sub ] ->
      Alcotest.(check int) "submitted for the guarded slot" 10
        sub.Flid.sub_slot;
      Alcotest.(check bool) "honest entitlement kept" true
        (List.mem_assoc 900 sub.Flid.sub_pairs);
      Alcotest.(check (list int)) "budget guesses, round-robin from 901"
        [ 901; 902 ] (guessed_groups sub)
  | subs ->
      Alcotest.fail (Printf.sprintf "expected 1 submission, got %d"
                       (List.length subs)));
  (* The cursor advances: the next slot probes the next two groups. *)
  match inst.Strategy.on_slot (ctx ~slot:11 ~prng ()) with
  | [ sub ] ->
      Alcotest.(check (list int)) "cursor advanced to 903"
        [ 903; 904 ]
        (guessed_groups sub)
  | _ -> Alcotest.fail "expected 1 submission"

let test_replay_behaviour () =
  let prng = Prng.create 6 in
  let inst =
    instantiate (Spec.Stale_replay { lag_slots = 4 }) ~attack_at:30.
  in
  (* No submission old enough: only the honest one goes out. *)
  let fresh = { Flid.sub_slot = 8; sub_pairs = [ (900, 0x1); (901, 0x2) ] } in
  (match inst.Strategy.on_slot (ctx ~history:[ fresh ] ~prng ()) with
  | [ honest ] ->
      Alcotest.(check int) "honest submission only" 10 honest.Flid.sub_slot
  | subs ->
      Alcotest.fail (Printf.sprintf "expected 1 submission, got %d"
                       (List.length subs)));
  (* A submission >= lag_slots old is replayed against the current
     slot, keys verbatim. *)
  let stale = { Flid.sub_slot = 5; sub_pairs = [ (901, 0x2B); (902, 0x2C) ] } in
  match inst.Strategy.on_slot (ctx ~history:[ fresh; stale ] ~prng ()) with
  | [ honest; replayed ] ->
      Alcotest.(check int) "honest part intact" 10 honest.Flid.sub_slot;
      Alcotest.(check int) "replay retargets the current slot" 10
        replayed.Flid.sub_slot;
      Alcotest.(check bool) "stale keys verbatim" true
        (replayed.Flid.sub_pairs = stale.Flid.sub_pairs)
  | subs ->
      Alcotest.fail (Printf.sprintf "expected 2 submissions, got %d"
                       (List.length subs))

(* Strategies announce themselves on the trace stream: one "guess"
   event per probing slot, one "replay" event per replayed submission,
   under the attack.strategy component. *)
let test_trace_signatures () =
  let records = ref [] in
  let sink =
    Tracer.install ~components:[ "attack.strategy" ] (fun r ->
        records := r :: !records)
  in
  Fun.protect
    ~finally:(fun () -> Tracer.remove sink)
    (fun () ->
      let prng = Prng.create 7 in
      let g =
        instantiate (Spec.Key_guessing { budget_per_slot = 2 }) ~attack_at:30.
      in
      ignore (g.Strategy.on_slot (ctx ~prng ()));
      let r =
        instantiate (Spec.Stale_replay { lag_slots = 4 }) ~attack_at:30.
      in
      let stale = { Flid.sub_slot = 5; sub_pairs = [ (901, 0x2B) ] } in
      ignore (r.Strategy.on_slot (ctx ~history:[ stale ] ~prng ())));
  let events = List.rev_map (fun r -> r.Tracer.event) !records in
  Alcotest.(check (list string)) "one event per strategy action"
    [ "guess"; "replay" ] events;
  List.iter
    (fun r ->
      Alcotest.(check string) "component" "attack.strategy" r.Tracer.component;
      Alcotest.(check bool) "slot attribute present" true
        (List.mem_assoc "slot" r.Tracer.attrs))
    !records;
  match !records with
  | [ _; guess ] ->
      Alcotest.(check bool) "guess records its budget" true
        (List.assoc_opt "budget" guess.Tracer.attrs = Some (Json.Int 2))
  | _ -> Alcotest.fail "expected 2 trace records"

(* --- escalating session-join lockout ------------------------------------ *)

(* sender host -- edge router -- receiver host, the same rig as
   test_sigma: slot keys distributed at slot 2, 0.25 s slots, so the
   3-slot join grace is 0.75 s and the base lockout 0.25 s. *)
type env = {
  sim : Sim.t;
  d1 : Node.t;
  agent : Router_agent.t;
}

let minimal = 900
let upper = 901
let slot_duration = 0.25

let make_env () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let src = Topology.add_node topo Node.Host in
  let router = Topology.add_node topo Node.Edge_router in
  let d1 = Topology.add_node topo Node.Host in
  let connect a b =
    ignore
      (Topology.connect topo a b ~rate_bps:10_000_000. ~delay_s:0.002
         ~buffer_bytes:100_000 ())
  in
  connect src router;
  connect router d1;
  Topology.compute_routes topo;
  Topology.register_group topo ~group:minimal ~source:src;
  Topology.register_group topo ~group:upper ~source:src;
  let agent = Router_agent.attach topo router in
  Node.subscribe_local router ~group:minimal (fun _ -> ());
  Multicast.graft topo ~node:router ~group:minimal
    ~down:(Option.get (Hashtbl.find_opt router.Node.fib d1.Node.id));
  Multicast.prune topo ~node:router ~group:minimal
    ~down:(Option.get (Hashtbl.find_opt router.Node.fib d1.Node.id));
  ignore
    (Special.distribute topo ~sender:src ~session:1 ~via_group:minimal
       ~width:16 ~slot:2 ~slot_duration
       ~tuples:
         [
           Tuple.make ~group:minimal ~slot:2 ~keys:[ 0xAA ] ~minimal:true;
           Tuple.make ~group:upper ~slot:2 ~keys:[ 0xBB ] ~minimal:false;
         ]
       ());
  Sim.run_until sim 0.2;
  { sim; d1; agent }

let join env =
  Router_agent.handle_session_join env.agent ~receiver:env.d1.Node.id
    ~group:minimal

let active env =
  Router_agent.iface_active env.agent ~group:minimal ~toward:env.d1.Node.id

(* Letting the join grace lapse twice without ever presenting a key
   must charge a longer lockout the second time: with 0.25 s slots the
   first strike pauses the interface for one slot, the second for two.
   A flat (non-escalating) lockout would re-admit at t=2.5. *)
let test_escalating_join_lockout () =
  let env = make_env () in
  join env;
  Alcotest.(check bool) "first keyless join admitted" true (active env);
  (* Grace lapses at 0.95; strike 1 charges a 0.25 s lockout. *)
  Sim.run_until env.sim 1.3;
  Alcotest.(check bool) "first grace lapsed" false (active env);
  join env;
  Alcotest.(check bool) "re-admitted after the base lockout" true (active env);
  (* Grace lapses again at 2.05; strike 2 doubles the lockout to 0.5 s,
     so at 2.5 the interface is still paused. *)
  Sim.run_until env.sim 2.5;
  join env;
  Alcotest.(check bool) "second strike locks out twice as long" false
    (active env);
  Sim.run_until env.sim 2.7;
  join env;
  Alcotest.(check bool) "admitted once the doubled lockout passes" true
    (active env);
  let s = Router_agent.stats env.agent in
  Alcotest.(check bool) "both strikes counted" true
    (s.Router_agent.lockouts >= 2)

(* Leaving before the keyless grace expires owes the same lockout as
   letting it expire — otherwise join/leave cycling inside the grace
   window rides the session for free (grace churn). *)
let test_early_leave_charges_lockout () =
  let env = make_env () in
  join env;
  Alcotest.(check bool) "keyless join admitted" true (active env);
  Router_agent.handle_unsubscribe env.agent ~receiver:env.d1.Node.id
    ~groups:[ minimal ];
  Alcotest.(check bool) "gone after the leave" false (active env);
  join env;
  Alcotest.(check bool) "immediate rejoin denied" false (active env);
  let s = Router_agent.stats env.agent in
  Alcotest.(check bool) "early leave counted as a lockout" true
    (s.Router_agent.lockouts >= 1);
  (* The churn penalty is a pause, not a ban. *)
  Sim.run_until env.sim 0.5;
  join env;
  Alcotest.(check bool) "admitted after the lockout" true (active env)

(* --- matrix cells ------------------------------------------------------- *)

let cell ?(attack = Spec.Persistent_inflation) ?(defence = Spec.Delta_sigma) ()
    =
  { Spec.default_adversary with Spec.attack; defence }

let test_cell_inflation () =
  let undefended = Matrix.run_cell (cell ~defence:Spec.Undefended ()) in
  Alcotest.(check bool) "plain: honest session starved" true
    (undefended.E.honest_loss_pct > 50.);
  Alcotest.(check bool) "plain: attacker well past a fair share" true
    (undefended.E.attacker_gain > 2.);
  Alcotest.(check (option (float 1e9))) "plain: never contained" None
    undefended.E.containment_s;
  let defended = Matrix.run_cell (cell ()) in
  Alcotest.(check bool) "delta+sigma: contained" true
    (defended.E.containment_s <> None);
  Alcotest.(check bool) "delta+sigma: honest goodput held" true
    (defended.E.honest_loss_pct < 10.);
  Alcotest.(check bool) "delta+sigma: attacker near entitlement" true
    (defended.E.attacker_gain < 2.);
  Alcotest.(check bool) "delta+sigma: forged keys rejected" true
    (defended.E.keys_rejected > 0)

let test_cell_guess_and_replay () =
  let guess =
    Matrix.run_cell
      (cell ~attack:(Spec.Key_guessing { budget_per_slot = 4 }) ())
  in
  Alcotest.(check bool) "guesses rejected at the edge" true
    (guess.E.keys_rejected > 0);
  Alcotest.(check bool) "guesser contained" true
    (guess.E.containment_s <> None);
  let replay =
    Matrix.run_cell (cell ~attack:(Spec.Stale_replay { lag_slots = 4 }) ())
  in
  Alcotest.(check bool) "stale keys rejected" true
    (replay.E.keys_rejected > 0);
  Alcotest.(check bool) "replayer contained" true
    (replay.E.containment_s <> None)

let test_cell_churn () =
  let churn =
    Matrix.run_cell
      (cell ~attack:(Spec.Grace_churn { period_slots = 2.5 }) ())
  in
  Alcotest.(check bool) "churn draws lockouts" true (churn.E.lockouts > 0);
  Alcotest.(check bool) "churn contained" true (churn.E.containment_s <> None);
  Alcotest.(check bool) "honest goodput held through churn" true
    (churn.E.honest_loss_pct < 10.)

(* --- determinism and scorecard ------------------------------------------ *)

let test_matrix_determinism () =
  let entries =
    Matrix.entries
      ~attacks:[ Spec.Persistent_inflation ]
      ~protocols:[ Spec.Flid_ds ]
      ~defences:[ Spec.Undefended; Spec.Delta_sigma ]
      ()
  in
  let capture jobs =
    let buf = Buffer.create 4096 in
    let rows =
      Matrix.run ~jobs ~sinks:[ Sink.jsonl (Buffer.add_string buf) ] entries
    in
    (Buffer.contents buf, rows)
  in
  let j1, rows = capture 1 in
  let j4, _ = capture 4 in
  Alcotest.(check string) "jsonl byte-identical, jobs 1 vs 4" j1 j4;
  Alcotest.(check bool) "wall clock stripped" false
    (contains ~needle:"wall_s" j1);
  Alcotest.(check int) "one line per cell" (List.length entries)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' j1)));
  let card = Scorecard.to_string rows in
  Alcotest.(check string) "scorecard deterministic" card
    (Scorecard.to_string rows);
  Alcotest.(check bool) "plain cell breached" true
    (contains ~needle:"BREACH" card);
  Alcotest.(check bool) "delta+sigma cell contained" true
    (contains ~needle:"contained" card);
  Alcotest.(check bool) "headline claim" true
    (contains ~needle:"DELTA+SIGMA contains every attack" card)

let suite =
  ( "attack",
    [
      Alcotest.test_case "strategy catalogue" `Quick test_catalogue;
      Alcotest.test_case "pulse gating" `Quick test_pulse_gating;
      Alcotest.test_case "guess budget & cursor" `Quick
        test_guess_budget_and_cursor;
      Alcotest.test_case "stale replay" `Quick test_replay_behaviour;
      Alcotest.test_case "trace signatures" `Quick test_trace_signatures;
      Alcotest.test_case "escalating join lockout" `Quick
        test_escalating_join_lockout;
      Alcotest.test_case "early leave charges lockout" `Quick
        test_early_leave_charges_lockout;
      Alcotest.test_case "cell: inflation" `Slow test_cell_inflation;
      Alcotest.test_case "cell: guess & replay" `Slow
        test_cell_guess_and_replay;
      Alcotest.test_case "cell: grace churn" `Slow test_cell_churn;
      Alcotest.test_case "matrix determinism & scorecard" `Slow
        test_matrix_determinism;
    ] )
