module Overhead = Mcc_delta.Overhead

(* The paper's Section 5.4 configuration: R = 4 Mbps, r = 100 Kbps,
   s = 4000 bits, b = 16, l = 8, z covers 50% loss. *)
let params ?(groups = 10) ?(slot = 0.25) ?(fec = 2.) () =
  let r = 100_000. and cumulative = 4_000_000. in
  let factor = (cumulative /. r) ** (1. /. float_of_int (groups - 1)) in
  {
    Overhead.groups;
    min_rate_bps = r;
    rate_factor = factor;
    slot;
    data_bits = 4000;
    key_bits = 16;
    slot_number_bits = 8;
    fec_expansion = fec;
    header_bits = 2000;
    upgrade_freq = Array.make (groups - 1) 0.25;
  }

let test_cumulative_rate () =
  let p = params () in
  Alcotest.(check bool) "R = 4 Mbps" true
    (abs_float (Overhead.cumulative_rate p -. 4_000_000.) < 1.)

let test_packets_per_slot () =
  let p = params () in
  (* 4 Mbps * 0.25 s / 4000 bits = 250 packets. *)
  Alcotest.(check bool) "P = 250" true
    (abs_float (Overhead.packets_per_slot p -. 250.) < 0.01)

let test_delta_formula () =
  let p = params () in
  (* (2 - 1/40) * 16/4000 = 0.0079 : the paper's ~0.8%. *)
  Alcotest.(check bool) "delta ~0.79%" true
    (abs_float (Overhead.delta_overhead p -. 0.0079) < 1e-4)

let test_delta_single_group () =
  let p = { (params ()) with Overhead.groups = 1; rate_factor = 1.5 } in
  (* N = 1: no decrease fields at all, so exactly b/s. *)
  Alcotest.(check (float 1e-9)) "b/s" (16. /. 4000.) (Overhead.delta_overhead p)

let test_sigma_under_paper_bound () =
  let p = params () in
  let o = Overhead.sigma_overhead p in
  Alcotest.(check bool) "under 0.6%" true (o < 0.006);
  Alcotest.(check bool) "positive" true (o > 0.)

let test_sigma_monotone_in_groups () =
  let a = Overhead.sigma_overhead (params ~groups:5 ()) in
  let b = Overhead.sigma_overhead (params ~groups:20 ()) in
  Alcotest.(check bool) "more groups, more overhead" true (b > a)

let test_sigma_decreasing_in_slot () =
  let a = Overhead.sigma_overhead (params ~slot:0.2 ()) in
  let b = Overhead.sigma_overhead (params ~slot:1.0 ()) in
  Alcotest.(check bool) "longer slots amortize" true (b < a)

let test_sigma_freq_length_check () =
  let p = { (params ()) with Overhead.upgrade_freq = [| 1. |] } in
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore (Overhead.sigma_overhead p);
       false
     with Invalid_argument _ -> true)

let test_counters () =
  let c = Overhead.counters () in
  Alcotest.(check (float 0.)) "empty" 0. (Overhead.measured_delta c);
  c.Overhead.data_bits_sent <- 4000;
  c.Overhead.delta_field_bits <- 32;
  c.Overhead.sigma_special_bits <- 20;
  Alcotest.(check (float 1e-9)) "delta ratio" 0.008 (Overhead.measured_delta c);
  Alcotest.(check (float 1e-9)) "sigma ratio" 0.005 (Overhead.measured_sigma c)

let suite =
  ( "overhead",
    [
      Alcotest.test_case "cumulative rate" `Quick test_cumulative_rate;
      Alcotest.test_case "packets per slot" `Quick test_packets_per_slot;
      Alcotest.test_case "delta formula" `Quick test_delta_formula;
      Alcotest.test_case "delta single group" `Quick test_delta_single_group;
      Alcotest.test_case "sigma under bound" `Quick test_sigma_under_paper_bound;
      Alcotest.test_case "sigma monotone in N" `Quick
        test_sigma_monotone_in_groups;
      Alcotest.test_case "sigma amortized by slot" `Quick
        test_sigma_decreasing_in_slot;
      Alcotest.test_case "freq length check" `Quick test_sigma_freq_length_check;
      Alcotest.test_case "counters" `Quick test_counters;
    ] )
