module Event_queue = Mcc_engine.Event_queue
module Sim = Mcc_engine.Sim

let test_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1. i
  done;
  let out = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

let test_queue_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Event_queue.push q ~time:Float.nan ())

let prop_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (float_bound_inclusive 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

let test_sim_order_and_clock () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~at:2. (fun () -> log := ("b", Sim.now sim) :: !log));
  ignore (Sim.schedule sim ~at:1. (fun () -> log := ("a", Sim.now sim) :: !log));
  Sim.run sim;
  Alcotest.(check (list (pair string (float 0.)))) "order & clock"
    [ ("a", 1.); ("b", 2.) ] (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~at:1. (fun () -> fired := true) in
  Sim.cancel h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check bool) "flag" true (Sim.cancelled h)

let test_sim_past () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~at:5. (fun () -> ()));
  Sim.run sim;
  Alcotest.(check bool) "raises on past" true
    (try
       ignore (Sim.schedule sim ~at:1. (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_sim_every () =
  let sim = Sim.create () in
  let count = ref 0 in
  let h = Sim.every sim ~start:0. ~period:1. (fun () -> incr count) in
  Sim.run_until sim 5.5;
  Alcotest.(check int) "six ticks in [0,5]" 6 !count;
  Sim.cancel h;
  Sim.run_until sim 10.;
  Alcotest.(check int) "no ticks after cancel" 6 !count

let test_sim_run_until_clock () =
  let sim = Sim.create () in
  Sim.run_until sim 3.;
  Alcotest.(check (float 0.)) "clock advances to horizon" 3. (Sim.now sim)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~at:1. (fun () ->
         log := 1 :: !log;
         ignore (Sim.schedule_after sim ~delay:0.5 (fun () -> log := 2 :: !log))));
  Sim.run sim;
  Alcotest.(check (list int)) "nested" [ 1; 2 ] (List.rev !log)

let test_queue_clear_resets () =
  let q = Event_queue.create () in
  (* Grow past the initial 64 slots, then clear: the heap must shrink
     back and the FIFO tie-break sequence must restart from zero. *)
  for i = 0 to 199 do
    Event_queue.push q ~time:(float_of_int (i mod 7)) i
  done;
  Alcotest.(check bool) "heap grew" true (Event_queue.capacity q > 64);
  Event_queue.clear q;
  Alcotest.(check int) "empty after clear" 0 (Event_queue.size q);
  Alcotest.(check int) "capacity back to initial" 64 (Event_queue.capacity q);
  (* Same-time pushes after clear drain in insertion order, exactly as
     they would in a fresh queue (next_seq restarted). *)
  for i = 0 to 9 do
    Event_queue.push q ~time:1. i
  done;
  let out = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo restarts" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

let suite =
  ( "engine",
    [
      Alcotest.test_case "queue order" `Quick test_queue_order;
      Alcotest.test_case "queue fifo ties" `Quick test_queue_fifo_ties;
      Alcotest.test_case "queue nan" `Quick test_queue_nan;
      Alcotest.test_case "queue clear resets" `Quick test_queue_clear_resets;
      QCheck_alcotest.to_alcotest prop_queue_sorted;
      Alcotest.test_case "sim order and clock" `Quick test_sim_order_and_clock;
      Alcotest.test_case "sim cancel" `Quick test_sim_cancel;
      Alcotest.test_case "sim rejects past" `Quick test_sim_past;
      Alcotest.test_case "sim periodic" `Quick test_sim_every;
      Alcotest.test_case "run_until clock" `Quick test_sim_run_until_clock;
      Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
    ] )
