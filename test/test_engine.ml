module Scheduler = Mcc_engine.Scheduler
module Sim = Mcc_engine.Sim

(* Queue-contract tests run against every backend: the Scheduler
   interface promises byte-identical pop sequences, so the same
   assertions must hold for heap and wheel alike. *)
let backends = Scheduler.all

let each_backend check f =
  List.iter
    (fun b ->
      let name = Scheduler.backend_name b in
      f name (Scheduler.instantiate b ()))
    check

let test_queue_order () =
  each_backend backends (fun name q ->
      q.Scheduler.push ~time:3. "c";
      q.Scheduler.push ~time:1. "a";
      q.Scheduler.push ~time:2. "b";
      let pop () =
        match q.Scheduler.pop () with Some (_, v) -> v | None -> "?"
      in
      let first = pop () in
      let second = pop () in
      let third = pop () in
      Alcotest.(check (list string))
        (name ^ " sorted")
        [ "a"; "b"; "c" ]
        [ first; second; third ])

let test_queue_fifo_ties () =
  each_backend backends (fun name q ->
      for i = 0 to 9 do
        q.Scheduler.push ~time:1. i
      done;
      let out = ref [] in
      let rec drain () =
        match q.Scheduler.pop () with
        | Some (_, v) ->
            out := v :: !out;
            drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check (list int))
        (name ^ " fifo ties")
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        (List.rev !out))

let test_queue_nan () =
  each_backend backends (fun name q ->
      Alcotest.check_raises (name ^ " nan")
        (Invalid_argument "Scheduler.push: NaN time") (fun () ->
          q.Scheduler.push ~time:Float.nan ()))

let test_wheel_negative_time () =
  let q = Scheduler.instantiate Scheduler.wheel () in
  Alcotest.check_raises "wheel negative"
    (Invalid_argument "Scheduler.push: negative time (wheel)") (fun () ->
      q.Scheduler.push ~time:(-1e-9) ())

let prop_queue_sorted =
  QCheck.Test.make ~name:"schedulers pop in time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (float_bound_inclusive 1000.))
    (fun times ->
      List.for_all
        (fun b ->
          let q = Scheduler.instantiate b () in
          List.iter (fun t -> q.Scheduler.push ~time:t ()) times;
          let rec drain last =
            match q.Scheduler.pop () with
            | None -> true
            | Some (t, ()) -> t >= last && drain t
          in
          drain neg_infinity)
        backends)

(* The wheel spans its levels: sub-microsecond ticks land on level 0,
   minutes-scale delays cascade down from upper levels, and times beyond
   the 2^32-microtick horizon take the overflow path — all of it must
   drain in exactly sorted order. *)
let test_wheel_level_span () =
  let times =
    [ 0.; 1e-7; 3e-6; 0.9; 250.; 251.00000025; 4000.; 4294.97; 100000.; 1e9 ]
  in
  let q = Scheduler.instantiate Scheduler.wheel () in
  List.iter (fun t -> q.Scheduler.push ~time:t ()) (List.rev times);
  let rec drain acc =
    match q.Scheduler.pop () with
    | Some (t, ()) -> drain (t :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list (float 0.))) "level span sorted" times (drain [])

let test_queue_clear_resets () =
  each_backend backends (fun name q ->
      for i = 0 to 199 do
        q.Scheduler.push ~time:(float_of_int (i mod 7)) i
      done;
      q.Scheduler.clear ();
      Alcotest.(check int) (name ^ " empty after clear") 0 (q.Scheduler.size ());
      (* Same-time pushes after clear drain in insertion order, exactly
         as they would in a fresh queue (next_seq restarted). *)
      for i = 0 to 9 do
        q.Scheduler.push ~time:1. i
      done;
      let out = ref [] in
      let rec drain () =
        match q.Scheduler.pop () with
        | Some (_, v) ->
            out := v :: !out;
            drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check (list int))
        (name ^ " fifo restarts")
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        (List.rev !out))

(* The heap grows in place by doubling from a lazy empty start: the
   capacity trajectory is exactly 0, 64, 128, 256, ... with one
   reallocation per doubling, and clear drops back to 0. *)
let test_heap_capacity_trajectory () =
  let q = Scheduler.instantiate Scheduler.heap () in
  Alcotest.(check int) "lazy start" 0 (q.Scheduler.capacity ());
  let trajectory = ref [ 0 ] in
  for i = 1 to 300 do
    q.Scheduler.push ~time:(float_of_int i) i;
    let c = q.Scheduler.capacity () in
    if c <> List.hd !trajectory then trajectory := c :: !trajectory
  done;
  Alcotest.(check (list int))
    "doubling trajectory" [ 0; 64; 128; 256; 512 ]
    (List.rev !trajectory);
  (* Growth points: capacity changes only when a push finds the arrays
     full, i.e. after pushes 1, 65, 129, 257 — four reallocations for
     300 elements, against 300 under the old Array.append regime. *)
  q.Scheduler.clear ();
  Alcotest.(check int) "clear drops storage" 0 (q.Scheduler.capacity ());
  q.Scheduler.push ~time:1. 1;
  Alcotest.(check int) "regrows lazily" 64 (q.Scheduler.capacity ())

let test_of_name () =
  (match Scheduler.of_name "WHEEL" with
  | Ok b ->
      Alcotest.(check string) "of_name wheel" "wheel" (Scheduler.backend_name b)
  | Error e -> Alcotest.fail e);
  match Scheduler.of_name "splay" with
  | Ok _ -> Alcotest.fail "splay accepted"
  | Error _ -> ()

let test_sim_order_and_clock () =
  List.iter
    (fun sched ->
      let sim = Sim.create ~sched () in
      let log = ref [] in
      ignore (Sim.schedule sim ~at:2. (fun () -> log := ("b", Sim.now sim) :: !log));
      ignore (Sim.schedule sim ~at:1. (fun () -> log := ("a", Sim.now sim) :: !log));
      Sim.run sim;
      Alcotest.(check (list (pair string (float 0.))))
        (Scheduler.backend_name sched ^ " order & clock")
        [ ("a", 1.); ("b", 2.) ]
        (List.rev !log))
    backends

let test_sim_default_backend () =
  let sim = Sim.create () in
  Alcotest.(check string) "default is heap" "heap" (Sim.sched_name sim);
  let prev = Scheduler.default () in
  Scheduler.set_default Scheduler.wheel;
  Fun.protect
    ~finally:(fun () -> Scheduler.set_default prev)
    (fun () ->
      let sim = Sim.create () in
      Alcotest.(check string) "domain default applies" "wheel"
        (Sim.sched_name sim);
      let sim = Sim.create ~sched:Scheduler.heap () in
      Alcotest.(check string) "?sched wins" "heap" (Sim.sched_name sim))

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~at:1. (fun () -> fired := true) in
  Sim.cancel h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check bool) "flag" true (Sim.cancelled h)

let test_sim_past () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~at:5. (fun () -> ()));
  Sim.run sim;
  Alcotest.(check bool) "raises on past" true
    (try
       ignore (Sim.schedule sim ~at:1. (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_sim_every () =
  List.iter
    (fun sched ->
      let sim = Sim.create ~sched () in
      let count = ref 0 in
      let h = Sim.every sim ~start:0. ~period:1. (fun () -> incr count) in
      Sim.run_until sim 5.5;
      Alcotest.(check int) "six ticks in [0,5]" 6 !count;
      Sim.cancel h;
      Sim.run_until sim 10.;
      Alcotest.(check int) "no ticks after cancel" 6 !count)
    backends

let test_sim_run_until_clock () =
  let sim = Sim.create () in
  Sim.run_until sim 3.;
  Alcotest.(check (float 0.)) "clock advances to horizon" 3. (Sim.now sim)

let test_sim_nested_schedule () =
  List.iter
    (fun sched ->
      let sim = Sim.create ~sched () in
      let log = ref [] in
      ignore
        (Sim.schedule sim ~at:1. (fun () ->
             log := 1 :: !log;
             ignore
               (Sim.schedule_after sim ~delay:0.5 (fun () -> log := 2 :: !log))));
      Sim.run sim;
      Alcotest.(check (list int))
        (Scheduler.backend_name sched ^ " nested")
        [ 1; 2 ]
        (List.rev !log))
    backends

(* Backend stats probes: deterministic counts of simulated work. *)
let test_heap_stats () =
  let q = Scheduler.Heap.create () in
  for i = 0 to 99 do
    Scheduler.Heap.push q ~time:(float_of_int i) i
  done;
  for _ = 0 to 49 do
    ignore (Scheduler.Heap.pop q)
  done;
  let s = Scheduler.Heap.stats q in
  Alcotest.(check int) "heap pushes" 100 s.Mcc_obs.Profile.pushes;
  Alcotest.(check int) "heap max size" 100 s.Mcc_obs.Profile.max_size;
  Alcotest.(check (list int))
    "heap capacity trajectory" [ 64; 128 ] s.Mcc_obs.Profile.capacities;
  Alcotest.(check (list int))
    "heap has no levels" [] s.Mcc_obs.Profile.level_places;
  Scheduler.Heap.clear q;
  let s = Scheduler.Heap.stats q in
  Alcotest.(check int) "heap stats cleared" 0 s.Mcc_obs.Profile.pushes

let test_wheel_stats () =
  let q = Scheduler.Wheel.create () in
  (* 3 level-0 placements, 1 higher-level, 1 beyond the 2^37 horizon. *)
  Scheduler.Wheel.push q ~time:0.000001 "a";
  Scheduler.Wheel.push q ~time:0.000002 "b";
  Scheduler.Wheel.push q ~time:0.000003 "c";
  Scheduler.Wheel.push q ~time:1.0 "d";
  Scheduler.Wheel.push q ~time:1e12 "overflow";
  let s = Scheduler.Wheel.stats q in
  Alcotest.(check int) "wheel pushes" 5 s.Mcc_obs.Profile.pushes;
  Alcotest.(check int) "wheel max size" 5 s.Mcc_obs.Profile.max_size;
  Alcotest.(check int) "wheel levels" 4
    (List.length s.Mcc_obs.Profile.level_places);
  Alcotest.(check int) "wheel level-0 places" 3
    (List.nth s.Mcc_obs.Profile.level_places 0);
  Alcotest.(check int) "wheel overflow places" 1 s.Mcc_obs.Profile.overflow;
  Alcotest.(check bool) "wheel grew once" true
    (s.Mcc_obs.Profile.free_misses >= 1);
  (* Drain everything: the recycled cells show up as free-list hits on
     the next batch of pushes. *)
  let rec drain () =
    match Scheduler.Wheel.pop q with Some _ -> drain () | None -> ()
  in
  drain ();
  Scheduler.Wheel.push q ~time:2.0 "e";
  let s = Scheduler.Wheel.stats q in
  Alcotest.(check bool) "wheel free-list hit" true
    (s.Mcc_obs.Profile.free_hits >= 1)

let suite =
  ( "engine",
    [
      Alcotest.test_case "queue order" `Quick test_queue_order;
      Alcotest.test_case "queue fifo ties" `Quick test_queue_fifo_ties;
      Alcotest.test_case "queue nan" `Quick test_queue_nan;
      Alcotest.test_case "wheel negative time" `Quick test_wheel_negative_time;
      Alcotest.test_case "wheel level span" `Quick test_wheel_level_span;
      Alcotest.test_case "queue clear resets" `Quick test_queue_clear_resets;
      Alcotest.test_case "heap capacity trajectory" `Quick
        test_heap_capacity_trajectory;
      Alcotest.test_case "backend of_name" `Quick test_of_name;
      Alcotest.test_case "heap stats" `Quick test_heap_stats;
      Alcotest.test_case "wheel stats" `Quick test_wheel_stats;
      QCheck_alcotest.to_alcotest prop_queue_sorted;
      Alcotest.test_case "sim order and clock" `Quick test_sim_order_and_clock;
      Alcotest.test_case "sim default backend" `Quick test_sim_default_backend;
      Alcotest.test_case "sim cancel" `Quick test_sim_cancel;
      Alcotest.test_case "sim rejects past" `Quick test_sim_past;
      Alcotest.test_case "sim periodic" `Quick test_sim_every;
      Alcotest.test_case "run_until clock" `Quick test_sim_run_until_clock;
      Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
    ] )
