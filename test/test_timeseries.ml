(* Time-series telemetry tests: the Timeseries sampler, the Sim-driven
   periodic tick, the series JSONL sink's parallel determinism, the JSON
   parser round-trip, the tracer's dotted-boundary matching, and the
   forensics sparkline/report parsing.

   The determinism test is the load-bearing one: sampled series are part
   of a run's output, so --jobs 4 must produce byte-identical series
   JSONL to a serial run. *)

module Forensics = Mcc_core.Forensics
module Json = Mcc_core.Json
module Metrics = Mcc_obs.Metrics
module Runner = Mcc_core.Runner
module Sim = Mcc_engine.Sim
module Sink = Mcc_core.Sink
module Spec = Mcc_core.Spec
module Timeseries = Mcc_obs.Timeseries
module Tracer = Mcc_obs.Tracer
module Flid = Mcc_mcast.Flid

let with_sampling ?max_points ~dt f =
  Timeseries.enable ?max_points ~dt ();
  Fun.protect ~finally:Timeseries.disable f

(* --- sampler semantics -------------------------------------------------- *)

let test_disabled_noop () =
  Alcotest.(check bool) "disabled" false (Timeseries.enabled ());
  Timeseries.sample_gauge "g" (fun () -> 1.);
  Timeseries.record "e" ~time:0. ~value:1.;
  Timeseries.sample_all ~time:0.;
  Alcotest.(check (list (pair string (list (pair (float 0.) (float 0.))))))
    "nothing recorded" [] (Timeseries.snapshot ());
  Alcotest.(check (option (float 0.))) "no dt" None (Timeseries.dt ())

let test_gauge_and_rate () =
  with_sampling ~dt:1. (fun () ->
      Alcotest.(check (option (float 0.))) "dt" (Some 1.) (Timeseries.dt ());
      let level = ref 2. and total = ref 1000. in
      Timeseries.sample_gauge "level" (fun () -> !level);
      (* The rate baseline is the reading at registration: the first tick
         must report the growth since then, not since zero. *)
      Timeseries.sample_rate ~scale:0.008 "kbps" (fun () -> !total);
      Timeseries.sample_all ~time:0.;
      level := 5.;
      total := !total +. 125_000.;
      Timeseries.sample_all ~time:1.;
      match Timeseries.snapshot () with
      | [ ("kbps", kbps); ("level", lvl) ] ->
          Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
            "gauge points" [ (0., 2.); (1., 5.) ] lvl;
          Alcotest.(check (list (pair (float 1e-9) (float 1e-6))))
            "rate points (kbit/s)" [ (0., 0.); (1., 1000.) ] kbps
      | other ->
          Alcotest.fail
            (Printf.sprintf "unexpected snapshot of %d series"
               (List.length other)))

let test_name_collision_suffix () =
  with_sampling ~dt:1. (fun () ->
      Timeseries.sample_gauge "q" (fun () -> 1.);
      Timeseries.sample_gauge "q" (fun () -> 2.);
      Timeseries.sample_gauge "q" (fun () -> 3.);
      Timeseries.sample_all ~time:0.;
      Alcotest.(check (list string)) "suffixed names" [ "q"; "q#2"; "q#3" ]
        (List.map fst (Timeseries.snapshot ())))

let test_bounded_series () =
  with_sampling ~max_points:3 ~dt:1. (fun () ->
      Timeseries.sample_gauge "g" (fun () -> 0.);
      for i = 0 to 9 do
        Timeseries.sample_all ~time:(float_of_int i)
      done;
      (match Timeseries.snapshot () with
      | [ ("g", points) ] ->
          Alcotest.(check int) "capped at max_points" 3 (List.length points)
      | _ -> Alcotest.fail "expected one series");
      Alcotest.(check int) "dropped counted" 7 (Timeseries.dropped ()))

let test_record_and_reset () =
  with_sampling ~dt:1. (fun () ->
      Timeseries.record "evictions" ~time:2.5 ~value:4.;
      Timeseries.record "evictions" ~time:7.5 ~value:6.;
      (match Timeseries.snapshot () with
      | [ ("evictions", points) ] ->
          Alcotest.(check (list (pair (float 0.) (float 0.))))
            "event points" [ (2.5, 4.); (7.5, 6.) ] points
      | _ -> Alcotest.fail "expected one series");
      Timeseries.reset ();
      Alcotest.(check bool) "still enabled" true (Timeseries.enabled ());
      Alcotest.(check int) "series cleared" 0
        (List.length (Timeseries.snapshot ())))

let test_enable_validation () =
  Alcotest.check_raises "dt zero"
    (Invalid_argument "Timeseries.enable: dt must be finite and positive")
    (fun () -> Timeseries.enable ~dt:0. ());
  Alcotest.(check bool) "still disabled" false (Timeseries.enabled ())

(* The engine end of the contract: Sim.create installs the sampling tick
   when the domain has sampling enabled, at simulated times 0, dt, 2dt... *)
let test_sim_tick () =
  with_sampling ~dt:0.5 (fun () ->
      let sim = Sim.create () in
      let v = ref 0. in
      Timeseries.sample_gauge "v" (fun () -> !v);
      ignore (Sim.schedule sim ~at:0.75 (fun () -> v := 1.));
      Sim.run_until sim 2.25;
      match Timeseries.snapshot () with
      | [ ("v", points) ] ->
          Alcotest.(check (list (pair (float 1e-9) (float 0.))))
            "sampled on the simulated clock"
            [ (0., 0.); (0.5, 0.); (1., 1.); (1.5, 1.); (2., 1.) ]
            points
      | _ -> Alcotest.fail "expected one series")

(* --- exponential_bounds ------------------------------------------------- *)

let test_exponential_bounds () =
  Alcotest.(check (list (float 0.))) "base 1"
    [ 1.; 2.; 4.; 8.; 16. ]
    (Metrics.exponential_bounds ~base:1. ~count:5);
  Alcotest.(check (list (float 0.))) "base 10"
    [ 10.; 20.; 40.; 80.; 160.; 320.; 640.; 1280. ]
    (Metrics.exponential_bounds ~base:10. ~count:8);
  Alcotest.check_raises "count zero"
    (Invalid_argument "Metrics.exponential_bounds: count must be >= 1")
    (fun () -> ignore (Metrics.exponential_bounds ~base:1. ~count:0));
  Alcotest.check_raises "base negative"
    (Invalid_argument
       "Metrics.exponential_bounds: base must be finite and positive")
    (fun () -> ignore (Metrics.exponential_bounds ~base:(-1.) ~count:3))

(* --- tracer component matching ------------------------------------------ *)

let test_component_boundaries () =
  let m filter c = Tracer.component_matches ~filter c in
  Alcotest.(check bool) "exact" true (m "sigma" "sigma");
  Alcotest.(check bool) "descendant" true (m "sigma" "sigma.router");
  Alcotest.(check bool) "deep descendant" true (m "sigma" "sigma.router.iface");
  Alcotest.(check bool) "no sibling prefix" false (m "sigma" "sigmax");
  Alcotest.(check bool) "no sibling descendant" false (m "sigma" "sigmax.fec");
  Alcotest.(check bool) "child filter vs parent" false (m "sigma.router" "sigma");
  (* A trailing dot is prefix notation for the same filter. *)
  Alcotest.(check bool) "trailing dot, exact" true (m "sigma." "sigma");
  Alcotest.(check bool) "trailing dot, descendant" true
    (m "sigma." "sigma.router");
  Alcotest.(check bool) "trailing dot, sibling" false (m "sigma." "sigmax")

let test_check_component () =
  let ok s = Alcotest.(check bool) s true (Tracer.check_component s = Ok ()) in
  ok "sigma";
  ok "sigma.router";
  ok "sigma.";
  let err s =
    match Tracer.check_component s with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (Printf.sprintf "%S accepted" s)
  in
  err "";
  err "  ";
  err "sigma..router";
  err "si gma";
  (match Tracer.check_components [ "sigma"; "link"; "" ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty filter accepted in list");
  Alcotest.(check bool) "all valid" true
    (Tracer.check_components [ "sigma"; "link.0" ] = Ok ())

(* --- JSON parser -------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("name", Json.String "fig7");
        ("n", Json.Int 3);
        ("x", Json.Float 1.5);
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("series", Json.List [ Json.List [ Json.Float 0.; Json.Float 2. ] ]);
        ("esc", Json.String "a\"b\\c\n\t");
      ]
  in
  match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check string) "round-trip" (Json.to_string j) (Json.to_string j')
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_errors () =
  let bad s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S accepted" s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "nul";
  bad "1 2";
  bad "\"unterminated";
  match Json.of_string "  [1, 2.5, \"x\"]  " with
  | Ok (Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]) -> ()
  | Ok j -> Alcotest.fail ("wrong shape: " ^ Json.to_string j)
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

(* --- series JSONL determinism ------------------------------------------- *)

(* Mirrors test_runner's small batch: cheap spec kinds at short horizons,
   but sampled.  The attack entry carries the interesting series. *)
let sampled_batch () =
  List.map
    (fun (name, spec) ->
      { Runner.name; group = name; doc = name;
        spec = Spec.scale_time spec ~factor:0.1 })
    [
      ("attack", Spec.Attack { Spec.default_attack with Spec.mode = Flid.Robust });
      ("sweep2", Spec.Sweep { Spec.default_sweep with Spec.sessions = 2 });
      ("conv",
       Spec.Convergence { Spec.default_convergence with Spec.mode = Flid.Plain });
    ]

let capture_series entries ~jobs =
  let buf = Buffer.create 4096 in
  ignore
    (Runner.run_batch ~jobs ~sample_dt:0.5
       ~sinks:[ Sink.series_jsonl (Buffer.add_string buf) ]
       entries);
  Buffer.contents buf

let test_series_determinism () =
  let entries = sampled_batch () in
  let s1 = capture_series entries ~jobs:1 in
  let s4 = capture_series entries ~jobs:4 in
  Alcotest.(check bool) "series non-empty" true (String.length s1 > 0);
  Alcotest.(check string) "series jsonl byte-identical, jobs 1 vs 4" s1 s4;
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s1) in
  Alcotest.(check int) "one line per sampled entry" (List.length entries)
    (List.length lines);
  (* Every line parses back into a run with sampled points. *)
  List.iter
    (fun line ->
      match Forensics.parse_series_line line with
      | Ok run ->
          Alcotest.(check bool)
            (run.Forensics.name ^ " has series")
            true
            (run.Forensics.series <> []
            && List.for_all (fun (_, pts) -> pts <> []) run.Forensics.series)
      | Error e -> Alcotest.fail ("sink line does not parse: " ^ e))
    lines;
  (* Sampling one batch must not leak into the next unsampled run. *)
  ignore
    (Runner.run_batch ~jobs:1 ~sinks:[] [ List.hd entries ]);
  Alcotest.(check bool) "sampling off after batch" false (Timeseries.enabled ())

(* The attack figure's series must carry the paper's narrative: under
   SIGMA, eviction/rejection activity appears only after attack_at. *)
let test_attack_series_narrative () =
  let entry =
    { Runner.name = "attack"; group = "attack"; doc = "";
      spec =
        Spec.Attack
          { Spec.default_attack with Spec.mode = Flid.Robust; Spec.duration = 40.;
            Spec.attack_at = 20. } }
  in
  let buf = Buffer.create 4096 in
  ignore
    (Runner.run_batch ~jobs:1 ~sample_dt:0.5
       ~sinks:[ Sink.series_jsonl (Buffer.add_string buf) ]
       [ entry ]);
  match
    Forensics.parse_series_lines
      (String.split_on_char '\n' (Buffer.contents buf))
  with
  | Error e -> Alcotest.fail e
  | Ok [ run ] ->
      let series name =
        match List.assoc_opt name run.Forensics.series with
        | Some pts -> pts
        | None ->
            Alcotest.fail
              (Printf.sprintf "series %S missing (have: %s)" name
                 (String.concat ", " (List.map fst run.Forensics.series)))
      in
      let rejected = series "sigma.r1.keys_rejected_per_s" in
      let active = List.filter (fun (_, v) -> v > 0.) rejected in
      Alcotest.(check bool) "rejections happen" true (active <> []);
      List.iter
        (fun (t, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "rejection at t=%g only after the attack" t)
            true (t >= 20.))
        active;
      (* The honest receiver's goodput series exists and moved data. *)
      let goodputs =
        List.filter
          (fun (n, _) ->
            String.length n > 13
            && String.sub n (String.length n - 13) 13 = ".goodput_kbps")
          run.Forensics.series
      in
      Alcotest.(check bool) "goodput series present" true (goodputs <> []);
      Alcotest.(check bool) "goodput nonzero somewhere" true
        (List.exists
           (fun (_, pts) -> List.exists (fun (_, v) -> v > 0.) pts)
           goodputs)
  | Ok runs ->
      Alcotest.fail (Printf.sprintf "expected 1 run, got %d" (List.length runs))

(* --- sparkline and report parsing --------------------------------------- *)

let test_sparkline () =
  Alcotest.(check int) "empty is width blanks" 10
    (String.length (Forensics.sparkline ~width:10 []));
  Alcotest.(check string) "empty is blank" (String.make 10 ' ')
    (Forensics.sparkline ~width:10 []);
  let flat = List.init 20 (fun i -> (float_of_int i, 5.)) in
  let s = Forensics.sparkline ~width:10 flat in
  Alcotest.(check int) "requested width" 10 (String.length s);
  Alcotest.(check string) "constant positive at full height"
    (String.make 10 '@') s;
  let zero = List.init 20 (fun i -> (float_of_int i, 0.)) in
  Alcotest.(check string) "constant zero at lowest mark" (String.make 10 '.')
    (Forensics.sparkline ~width:10 zero);
  let ramp = List.init 100 (fun i -> (float_of_int i, float_of_int i)) in
  let r = Forensics.sparkline ~width:10 ramp in
  (* Bins are averaged, so the last bin sits one rung below the peak. *)
  Alcotest.(check char) "ramp starts at the bottom" '.' r.[0];
  Alcotest.(check bool) "ramp ends near the top" true
    (r.[9] = '%' || r.[9] = '@')

let test_trace_line_parse () =
  let line =
    {|{"t":25.5,"level":"warn","component":"sigma.router","event":"key_failure_start","attrs":{"receiver":3,"rejected":7}}|}
  in
  match Forensics.parse_trace_line line with
  | Ok e ->
      Alcotest.(check (float 0.)) "time" 25.5 e.Forensics.time;
      Alcotest.(check string) "component" "sigma.router" e.Forensics.component;
      Alcotest.(check string) "event" "key_failure_start" e.Forensics.event;
      Alcotest.(check bool) "attrs kept" true
        (List.mem_assoc "receiver" e.Forensics.attrs)
  | Error e -> Alcotest.fail e

let suite =
  ( "timeseries",
    [
      Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
      Alcotest.test_case "gauge and rate sampling" `Quick test_gauge_and_rate;
      Alcotest.test_case "name collisions suffixed" `Quick
        test_name_collision_suffix;
      Alcotest.test_case "series bounded" `Quick test_bounded_series;
      Alcotest.test_case "record and reset" `Quick test_record_and_reset;
      Alcotest.test_case "enable validation" `Quick test_enable_validation;
      Alcotest.test_case "sim drives the tick" `Quick test_sim_tick;
      Alcotest.test_case "exponential bounds" `Quick test_exponential_bounds;
      Alcotest.test_case "component dotted boundaries" `Quick
        test_component_boundaries;
      Alcotest.test_case "filter validation" `Quick test_check_component;
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json errors" `Quick test_json_errors;
      Alcotest.test_case "sparkline" `Quick test_sparkline;
      Alcotest.test_case "trace line parse" `Quick test_trace_line_parse;
      Alcotest.test_case "series determinism jobs 1 vs 4" `Slow
        test_series_determinism;
      Alcotest.test_case "attack series narrative" `Slow
        test_attack_series_narrative;
    ] )
