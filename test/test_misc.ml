(* Smaller odds and ends: printers, report formatting, and observability
   helpers that the larger suites don't exercise. *)

module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Packet = Mcc_net.Packet
module Payload = Mcc_net.Payload
module Series = Mcc_util.Series

let to_string pp v = Format.asprintf "%a" pp v

(* Substring helper without external deps. *)
let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec scan i = i + m <= n && (String.sub s i m = affix || scan (i + 1)) in
  m = 0 || scan 0

let test_packet_pp () =
  let pkt =
    Packet.make ~src:1 ~dst:(Packet.Unicast 2) ~size:100 Payload.Raw
  in
  let s = to_string Packet.pp pkt in
  Alcotest.(check bool) "route shown" true (contains s "1->u2");
  Alcotest.(check bool) "size shown" true (contains s "100B");
  let mc =
    Packet.make ~src:3 ~dst:(Packet.Multicast 99) ~size:50 Payload.Raw
  in
  Alcotest.(check bool) "group shown" true (contains (to_string Packet.pp mc) "g99")

let test_payload_pp_extension () =
  let flid =
    Mcc_mcast.Flid.Data
      {
        session = 1;
        group = 2;
        slot = 3;
        seq = 4;
        last = true;
        upgrade_mask = 0;
        delta = None;
      }
  in
  let s = to_string Payload.pp flid in
  Alcotest.(check bool) "flid printer registered" true (contains s "flid");
  Alcotest.(check string) "raw payload" "raw" (to_string Payload.pp Payload.Raw)

let test_series_pp_rows () =
  let s = Series.create () in
  Series.add s ~time:1. ~value:2.;
  Series.add s ~time:3. ~value:4.;
  let out = Format.asprintf "%a" (Series.pp_rows ~label:"demo") s in
  Alcotest.(check bool) "label" true (contains out "# demo");
  Alcotest.(check bool) "row" true (contains out "1.000 2.000")

let test_sim_events_counter () =
  let sim = Sim.create () in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~at:(float_of_int i) (fun () -> ()))
  done;
  let h = Sim.schedule sim ~at:6. (fun () -> ()) in
  Sim.cancel h;
  Sim.run sim;
  Alcotest.(check int) "cancelled events not counted" 5
    (Sim.events_executed sim)

let test_node_link_to () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let a = Topology.add_node topo Node.Host in
  let b = Topology.add_node topo Node.Host in
  let c = Topology.add_node topo Node.Host in
  ignore
    (Topology.connect topo a b ~rate_bps:1e6 ~delay_s:0.01 ~buffer_bytes:1000 ());
  Alcotest.(check bool) "a-b" true (Node.link_to a b.Node.id <> None);
  Alcotest.(check bool) "a-c absent" true (Node.link_to a c.Node.id = None);
  Alcotest.(check int) "two simplex links" 2 (List.length (Topology.links topo));
  Alcotest.(check int) "three nodes" 3 (List.length (Topology.nodes topo))

let test_topology_unknown_node () =
  let sim = Sim.create () in
  let topo = Topology.create sim in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Topology.node topo 42);
       false
     with Invalid_argument _ -> true)

let test_messages_sizes () =
  let module M = Mcc_sigma.Messages in
  Alcotest.(check int) "join" 32 M.session_join_bytes;
  Alcotest.(check int) "unsub 3 groups" (28 + 12)
    (M.unsubscribe_bytes [ 1; 2; 3 ]);
  Alcotest.(check bool) "special grows with tuples" true
    (M.special_bytes ~width:16
       [ Mcc_sigma.Tuple.make ~group:1 ~slot:1 ~keys:[ 1 ] ~minimal:false ]
    < M.special_bytes ~width:16
        [
          Mcc_sigma.Tuple.make ~group:1 ~slot:1 ~keys:[ 1 ] ~minimal:false;
          Mcc_sigma.Tuple.make ~group:2 ~slot:1 ~keys:[ 1; 2 ] ~minimal:false;
        ])

let suite =
  ( "misc",
    [
      Alcotest.test_case "packet pp" `Quick test_packet_pp;
      Alcotest.test_case "payload pp extensions" `Quick
        test_payload_pp_extension;
      Alcotest.test_case "series pp" `Quick test_series_pp_rows;
      Alcotest.test_case "sim events counter" `Quick test_sim_events_counter;
      Alcotest.test_case "node link_to / topology" `Quick test_node_link_to;
      Alcotest.test_case "topology unknown node" `Quick
        test_topology_unknown_node;
      Alcotest.test_case "message sizes" `Quick test_messages_sizes;
    ] )
