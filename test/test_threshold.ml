module Prng = Mcc_util.Prng
module Threshold = Mcc_delta.Threshold

let make_sender ?(levels = 3) ?(counts = [| 4; 3; 3 |])
    ?(thresholds = [| 0.25; 0.25; 0.25 |]) () =
  let prng = Prng.create 55 in
  Threshold.sender_create ~prng ~levels ~per_group_counts:counts
    ~loss_thresholds:thresholds

let deliver sender receiver ~drop ~levels ~counts =
  for g = 1 to levels do
    for i = 1 to counts.(g - 1) do
      if not (drop g i) then
        Threshold.on_shares receiver
          (Threshold.shares_for_packet sender ~group:g ~packet_index:i)
    done
  done

let test_quorums () =
  let s = make_sender () in
  (* n_1 = 4, n_2 = 7, n_3 = 10 with 25% tolerance: k = ceil(0.75 n). *)
  Alcotest.(check int) "k1" 3 (Threshold.level_quorum s ~level:1);
  Alcotest.(check int) "k2" 6 (Threshold.level_quorum s ~level:2);
  Alcotest.(check int) "k3" 8 (Threshold.level_quorum s ~level:3)

let test_reconstruct_no_loss () =
  let s = make_sender () in
  let r = Threshold.receiver_create ~levels:3 in
  deliver s r ~drop:(fun _ _ -> false) ~levels:3 ~counts:[| 4; 3; 3 |];
  for level = 1 to 3 do
    let quorum = Threshold.level_quorum s ~level in
    match Threshold.reconstruct r ~level ~quorum with
    | Some key ->
        Alcotest.(check int)
          (Printf.sprintf "level %d key" level)
          (Threshold.level_key s ~level)
          key
    | None -> Alcotest.fail "quorum should be met"
  done

let test_loss_within_threshold () =
  let s = make_sender () in
  let r = Threshold.receiver_create ~levels:3 in
  (* Lose 2 of 10 packets (20% < 25%): level 3 still reconstructible. *)
  deliver s r
    ~drop:(fun g i -> (g = 1 && i = 2) || (g = 3 && i = 1))
    ~levels:3 ~counts:[| 4; 3; 3 |];
  let quorum = Threshold.level_quorum s ~level:3 in
  match Threshold.reconstruct r ~level:3 ~quorum with
  | Some key ->
      Alcotest.(check int) "tolerates sub-threshold loss"
        (Threshold.level_key s ~level:3) key
  | None -> Alcotest.fail "quorum should be met"

let test_loss_beyond_threshold () =
  let s = make_sender () in
  let r = Threshold.receiver_create ~levels:3 in
  (* Lose 3 of 10 (30% > 25%): level 3 unreachable, but the loss is
     concentrated so level 1 (4 of 4 delivered... drop hits group 2/3)
     still reconstructs - graded access. *)
  deliver s r ~drop:(fun g _ -> g = 3) ~levels:3 ~counts:[| 4; 3; 3 |];
  Alcotest.(check (option int)) "level 3 denied" None
    (Threshold.reconstruct r ~level:3
       ~quorum:(Threshold.level_quorum s ~level:3));
  (match
     Threshold.reconstruct r ~level:2 ~quorum:(Threshold.level_quorum s ~level:2)
   with
  | Some key ->
      Alcotest.(check int) "level 2 granted" (Threshold.level_key s ~level:2) key
  | None -> Alcotest.fail "level 2 should reconstruct")

let test_share_overhead () =
  let s = make_sender () in
  (* Group 1 packets carry shares for levels 1..3, group 3 only level 3:
     the non-reusable overhead the paper points out. *)
  Alcotest.(check int) "group 1" 12 (Threshold.share_bytes_per_packet s ~group:1);
  Alcotest.(check int) "group 3" 4 (Threshold.share_bytes_per_packet s ~group:3);
  Alcotest.(check int) "share lists" 3
    (List.length (Threshold.shares_for_packet s ~group:1 ~packet_index:1));
  Alcotest.(check int) "share lists top" 1
    (List.length (Threshold.shares_for_packet s ~group:3 ~packet_index:1))

let test_duplicate_shares_ignored () =
  let s = make_sender () in
  let r = Threshold.receiver_create ~levels:3 in
  let shares = Threshold.shares_for_packet s ~group:1 ~packet_index:1 in
  Threshold.on_shares r shares;
  Threshold.on_shares r shares;
  Alcotest.(check int) "deduplicated" 1 (Threshold.shares_received r ~level:1)

let prop_threshold_quorum =
  QCheck.Test.make ~name:"threshold key iff quorum met" ~count:100
    QCheck.(pair small_int (int_range 0 9))
    (fun (seed, dropped) ->
      let prng = Prng.create (seed + 3) in
      let s =
        Threshold.sender_create ~prng ~levels:1 ~per_group_counts:[| 10 |]
          ~loss_thresholds:[| 0.3 |]
      in
      let r = Threshold.receiver_create ~levels:1 in
      for i = 1 to 10 do
        if i > dropped then
          Threshold.on_shares r (Threshold.shares_for_packet s ~group:1 ~packet_index:i)
      done;
      let quorum = Threshold.level_quorum s ~level:1 in
      let result = Threshold.reconstruct r ~level:1 ~quorum in
      if 10 - dropped >= quorum then result = Some (Threshold.level_key s ~level:1)
      else result = None)

let suite =
  ( "threshold",
    [
      Alcotest.test_case "quorums" `Quick test_quorums;
      Alcotest.test_case "reconstruct, no loss" `Quick test_reconstruct_no_loss;
      Alcotest.test_case "sub-threshold loss" `Quick test_loss_within_threshold;
      Alcotest.test_case "beyond-threshold loss" `Quick
        test_loss_beyond_threshold;
      Alcotest.test_case "share overhead" `Quick test_share_overhead;
      Alcotest.test_case "duplicate shares" `Quick test_duplicate_shares_ignored;
      QCheck_alcotest.to_alcotest prop_threshold_quorum;
    ] )
