module Scenario = Mcc_core.Scenario
module Flid = Mcc_mcast.Flid
module Layering = Mcc_mcast.Layering
module Meter = Mcc_util.Meter
module Series = Mcc_util.Series
module Router_agent = Mcc_sigma.Router_agent
module Defaults = Mcc_core.Defaults

let test_layering_rates () =
  let l = Layering.make ~groups:10 ~min_rate_bps:100_000. ~factor:1.5 in
  Alcotest.(check (float 1.)) "R1" 100_000. (Layering.cumulative_rate l ~level:1);
  Alcotest.(check (float 1.)) "R2" 150_000. (Layering.cumulative_rate l ~level:2);
  Alcotest.(check (float 1.)) "layer 2" 50_000. (Layering.layer_rate l ~group:2);
  Alcotest.(check (float 0.)) "R0" 0. (Layering.cumulative_rate l ~level:0);
  Alcotest.(check int) "fair level at 250k" 3
    (Layering.fair_level l ~rate_bps:250_000.);
  Alcotest.(check int) "fair level below minimum" 0
    (Layering.fair_level l ~rate_bps:50_000.);
  Alcotest.(check int) "fair level above top" 10
    (Layering.fair_level l ~rate_bps:1e9)

let test_layering_invalid () =
  Alcotest.(check bool) "factor 1" true
    (try
       ignore (Layering.make ~groups:2 ~min_rate_bps:1. ~factor:1.);
       false
     with Invalid_argument _ -> true)

let single_session ~mode ~seconds ?(bottleneck = Defaults.fair_share_bps) () =
  let t = Scenario.create ~seed:5 ~bottleneck_rate_bps:bottleneck () in
  let s = Scenario.add_multicast t ~mode ~receivers:[ Scenario.receiver () ] () in
  Scenario.run t ~seconds;
  (t, s, List.hd s.Scenario.receivers)

let test_plain_converges_to_fair_level () =
  let _, _, r = single_session ~mode:Flid.Plain ~seconds:60. () in
  (* Fair share 250 kbps: level 3 (225 kbps cumulative) is sustainable,
     level 4 (337 kbps) is not; probing may briefly hold 4. *)
  let level = Flid.receiver_level r in
  Alcotest.(check bool)
    (Printf.sprintf "level %d near fair" level)
    true
    (level >= 2 && level <= 4);
  let kbps = Meter.mean_kbps (Flid.receiver_meter r) ~lo:20. ~hi:60. in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f" kbps)
    true
    (kbps > 150. && kbps < 260.)

let test_robust_converges_to_fair_level () =
  let _, _, r = single_session ~mode:Flid.Robust ~seconds:60. () in
  let kbps = Meter.mean_kbps (Flid.receiver_meter r) ~lo:20. ~hi:60. in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f" kbps)
    true
    (kbps > 150. && kbps < 260.)

let test_sender_stats_accumulate () =
  let _, s, _ = single_session ~mode:Flid.Robust ~seconds:10. () in
  let stats = Flid.sender_stats s.Scenario.sender in
  Alcotest.(check bool) "slots ticked" true (stats.Flid.slots >= 38);
  Alcotest.(check bool) "data flowed" true (stats.Flid.data_bits > 0);
  Alcotest.(check bool) "delta fields counted" true (stats.Flid.delta_bits > 0);
  Alcotest.(check bool) "specials sent" true (stats.Flid.sigma_packets > 0);
  Alcotest.(check (float 0.)) "repetition-2 expansion" 2. stats.Flid.fec_expansion

let test_sender_keys_exposed () =
  let _, s, _ = single_session ~mode:Flid.Robust ~seconds:5. () in
  let stats = Flid.sender_stats s.Scenario.sender in
  let slot = stats.Flid.slots + 1 in
  (* The most recently guarded slots are current+1 and current+2. *)
  Alcotest.(check bool) "keys retained" true
    (Flid.sender_keys_for_slot s.Scenario.sender ~slot <> None)

let attack_scenario ~mode ~seconds ~attack_at =
  let t = Scenario.create ~seed:7 ~bottleneck_rate_bps:1_000_000. () in
  let f1 =
    Scenario.add_multicast t ~mode
      ~receivers:[ Scenario.receiver ~behavior:(Flid.Inflate_after attack_at) () ]
      ()
  in
  let f2 = Scenario.add_multicast t ~mode ~receivers:[ Scenario.receiver () ] () in
  Scenario.run t ~seconds;
  (t, List.hd f1.Scenario.receivers, List.hd f2.Scenario.receivers)

let test_plain_attack_succeeds () =
  let _, r1, r2 = attack_scenario ~mode:Flid.Plain ~seconds:80. ~attack_at:40. in
  let after m = Meter.mean_kbps m ~lo:50. ~hi:80. in
  let f1 = after (Flid.receiver_meter r1) in
  let f2 = after (Flid.receiver_meter r2) in
  Alcotest.(check bool)
    (Printf.sprintf "attacker hoards (%.0f)" f1)
    true (f1 > 600.);
  Alcotest.(check bool)
    (Printf.sprintf "victim starved (%.0f)" f2)
    true (f2 < 100.);
  Alcotest.(check int) "attacker at top level" 10 (Flid.receiver_level r1)

let test_robust_attack_blocked () =
  let t, r1, r2 = attack_scenario ~mode:Flid.Robust ~seconds:80. ~attack_at:40. in
  let before m = Meter.mean_kbps m ~lo:20. ~hi:40. in
  let after m = Meter.mean_kbps m ~lo:50. ~hi:80. in
  let f1b = before (Flid.receiver_meter r1) in
  let f1a = after (Flid.receiver_meter r1) in
  let f2a = after (Flid.receiver_meter r2) in
  Alcotest.(check bool)
    (Printf.sprintf "attacker capped (%.0f -> %.0f)" f1b f1a)
    true
    (f1a < 2. *. Mcc_core.Defaults.fair_share_bps /. 1000.);
  Alcotest.(check bool)
    (Printf.sprintf "victim keeps share (%.0f)" f2a)
    true (f2a > 80.);
  (* The attacker's guessed keys leave a trail at the edge router. *)
  match Scenario.agent t with
  | Some agent ->
      let total_guesses =
        List.fold_left
          (fun acc group ->
            let rec sum slot acc =
              if slot > 400 then acc
              else sum (slot + 1) (acc + Router_agent.guess_count agent ~group ~slot)
            in
            sum 0 acc)
          0
          (Router_agent.known_groups agent)
      in
      Alcotest.(check bool) "guesses tallied" true (total_guesses > 10)
  | None -> Alcotest.fail "robust scenario must have an agent"

let test_determinism () =
  let run () =
    let _, _, r = single_session ~mode:Flid.Robust ~seconds:30. () in
    Meter.total_bytes (Flid.receiver_meter r)
  in
  Alcotest.(check int) "same seed, same trace" (run ()) (run ())

let test_level_series_recorded () =
  let _, _, r = single_session ~mode:Flid.Plain ~seconds:30. () in
  Alcotest.(check bool) "level changes recorded" true
    (Series.length (Flid.level_series r) > 0);
  Alcotest.(check bool) "congestion events seen" true
    (Flid.congestion_events r > 0)

let test_late_joiner_syncs () =
  let t = Scenario.create ~seed:13 ~bottleneck_rate_bps:Defaults.fair_share_bps () in
  let s =
    Scenario.add_multicast t ~mode:Flid.Robust
      ~receivers:[ Scenario.receiver (); Scenario.receiver ~at:10. () ]
      ()
  in
  Scenario.run t ~seconds:60.;
  match s.Scenario.receivers with
  | [ early; late ] ->
      let ke = Meter.mean_kbps (Flid.receiver_meter early) ~lo:30. ~hi:60. in
      let kl = Meter.mean_kbps (Flid.receiver_meter late) ~lo:30. ~hi:60. in
      Alcotest.(check bool)
        (Printf.sprintf "late joiner converges (%.0f vs %.0f)" ke kl)
        true
        (abs_float (ke -. kl) < 0.3 *. ke)
  | _ -> Alcotest.fail "expected two receivers"

let test_ecn_scrub_breaks_keys () =
  (* With ECN on and a mark-everything threshold, scrubbed components
     must keep a would-be-uncongested receiver from opening upper
     groups... here we simply check the session still works end to end
     with ECN enabled and marks occur. *)
  let t =
    Scenario.create ~seed:21 ~ecn:true ~bottleneck_rate_bps:Defaults.fair_share_bps ()
  in
  let s = Scenario.add_multicast t ~mode:Flid.Robust ~receivers:[ Scenario.receiver () ] () in
  Scenario.run t ~seconds:40.;
  let r = List.hd s.Scenario.receivers in
  let kbps = Meter.mean_kbps (Flid.receiver_meter r) ~lo:20. ~hi:40. in
  Alcotest.(check bool) "session alive under ECN" true (kbps > 80.)

let test_interface_keys_end_to_end () =
  (* With collusion-resistant per-interface padding enabled, honest
     receivers on distinct interfaces still converge normally: the
     router compensates their lower keys transparently. *)
  let config =
    {
      Mcc_sigma.Router_agent.default_config with
      Mcc_sigma.Router_agent.interface_keys = true;
    }
  in
  let t =
    Scenario.create ~seed:67 ~agent_config:config
      ~bottleneck_rate_bps:(2. *. Defaults.fair_share_bps) ()
  in
  let s =
    Scenario.add_multicast t ~mode:Flid.Robust
      ~receivers:[ Scenario.receiver (); Scenario.receiver () ]
      ()
  in
  Scenario.run t ~seconds:60.;
  List.iter
    (fun r ->
      let kbps = Meter.mean_kbps (Flid.receiver_meter r) ~lo:20. ~hi:60. in
      Alcotest.(check bool)
        (Printf.sprintf "receiver works under padding (%.0f)" kbps)
        true (kbps > 150.))
    s.Scenario.receivers

let suite =
  ( "flid",
    [
      Alcotest.test_case "layering rates" `Quick test_layering_rates;
      Alcotest.test_case "layering invalid" `Quick test_layering_invalid;
      Alcotest.test_case "plain converges" `Slow test_plain_converges_to_fair_level;
      Alcotest.test_case "robust converges" `Slow
        test_robust_converges_to_fair_level;
      Alcotest.test_case "sender stats" `Quick test_sender_stats_accumulate;
      Alcotest.test_case "sender keys exposed" `Quick test_sender_keys_exposed;
      Alcotest.test_case "plain attack succeeds" `Slow test_plain_attack_succeeds;
      Alcotest.test_case "robust attack blocked" `Slow test_robust_attack_blocked;
      Alcotest.test_case "determinism" `Slow test_determinism;
      Alcotest.test_case "level series" `Quick test_level_series_recorded;
      Alcotest.test_case "late joiner" `Slow test_late_joiner_syncs;
      Alcotest.test_case "works under ecn" `Slow test_ecn_scrub_breaks_keys;
      Alcotest.test_case "interface keys end-to-end" `Slow
        test_interface_keys_end_to_end;
    ] )
