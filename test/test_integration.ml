(* Cross-cutting end-to-end scenarios beyond the paper's figures:
   receiver churn, shared-LAN interfaces, multiple attackers, and a
   two-bottleneck chain where heterogeneous receivers settle at
   different levels of one session. *)

module Sim = Mcc_engine.Sim
module Topology = Mcc_net.Topology
module Node = Mcc_net.Node
module Multicast = Mcc_net.Multicast
module Scenario = Mcc_core.Scenario
module Dumbbell = Mcc_core.Dumbbell
module Defaults = Mcc_core.Defaults
module Flid = Mcc_mcast.Flid
module Layering = Mcc_mcast.Layering
module Router_agent = Mcc_sigma.Router_agent
module Meter = Mcc_util.Meter
module Prng = Mcc_util.Prng
module Link = Mcc_net.Link

let test_receiver_leave_prunes () =
  let t = Scenario.create ~seed:81 ~bottleneck_rate_bps:Defaults.fair_share_bps () in
  let s =
    Scenario.add_multicast t ~mode:Flid.Robust ~receivers:[ Scenario.receiver () ] ()
  in
  Scenario.run t ~seconds:30.;
  let r = List.hd s.Scenario.receivers in
  let before = Meter.total_bytes (Flid.receiver_meter r) in
  Alcotest.(check bool) "was receiving" true (before > 0);
  Flid.receiver_leave r;
  Scenario.run t ~seconds:32.;
  let at_leave = Meter.total_bytes (Flid.receiver_meter r) in
  Scenario.run t ~seconds:45.;
  let later = Meter.total_bytes (Flid.receiver_meter r) in
  (* Explicit unsubscription stops forwarding within well under a
     second; anything still metered is the final in-flight trickle. *)
  Alcotest.(check bool)
    (Printf.sprintf "traffic stops (%d -> %d bytes over 13 s)" at_leave later)
    true
    (later - at_leave < 5_000)

let test_leave_and_rejoin () =
  let t = Scenario.create ~seed:82 ~bottleneck_rate_bps:Defaults.fair_share_bps () in
  let s =
    Scenario.add_multicast t ~mode:Flid.Robust ~receivers:[ Scenario.receiver () ] ()
  in
  Scenario.run t ~seconds:20.;
  let first = List.hd s.Scenario.receivers in
  Flid.receiver_leave first;
  Scenario.run t ~seconds:30.;
  (* A new receiver joins the half-abandoned session and must be
     admitted through session-join as usual. *)
  let host = Dumbbell.add_receiver (Scenario.dumbbell t) in
  Topology.compute_routes (Scenario.dumbbell t).Dumbbell.topo;
  let second =
    Flid.receiver_start ~at:31. (Scenario.dumbbell t).Dumbbell.topo ~host
      ~prng:(Prng.create 4242) s.Scenario.config
  in
  Scenario.run t ~seconds:70.;
  let kbps = Meter.mean_kbps (Flid.receiver_meter second) ~lo:45. ~hi:70. in
  Alcotest.(check bool)
    (Printf.sprintf "late rejoin reaches fair share (%.0f)" kbps)
    true (kbps > 120.)

let test_lan_shared_interface_end_to_end () =
  (* Two receivers of one FLID-DS session share a LAN interface: both
     must receive, and SIGMA treats them as one interface (grants are
     per-interface). *)
  let sim = Sim.create () in
  let db = Dumbbell.create sim ~bottleneck_rate_bps:Defaults.fair_share_bps () in
  let agent = Router_agent.attach db.Dumbbell.topo db.Dumbbell.right in
  ignore agent;
  let _lan, hosts = Dumbbell.add_receiver_lan db ~hosts:2 in
  let src = Dumbbell.add_sender db in
  let prng = Prng.create 83 in
  let config =
    Flid.make_config ~id:1 ~base_group:0x9000 ~layering:(Defaults.layering ())
      ~slot_duration:Defaults.flid_ds_slot ~mode:Flid.Robust ()
  in
  let _sender =
    Flid.sender_start db.Dumbbell.topo ~node:src ~prng:(Prng.split prng) config
  in
  let receivers =
    List.map
      (fun host ->
        Flid.receiver_start db.Dumbbell.topo ~host ~prng:(Prng.split prng)
          config)
      hosts
  in
  Dumbbell.finalize db;
  Sim.run_until sim 60.;
  List.iter
    (fun r ->
      let kbps = Meter.mean_kbps (Flid.receiver_meter r) ~lo:20. ~hi:60. in
      Alcotest.(check bool)
        (Printf.sprintf "LAN receiver gets data (%.0f)" kbps)
        true (kbps > 120.))
    receivers

let test_two_attackers_robust () =
  (* Both multicast receivers misbehave; SIGMA caps both and TCP keeps
     its share. *)
  let t = Scenario.create ~seed:84 ~bottleneck_rate_bps:1_000_000. () in
  let f1 =
    Scenario.add_multicast t ~mode:Flid.Robust
      ~receivers:[ Scenario.receiver ~behavior:(Flid.Inflate_after 20.) () ] ()
  in
  let f2 =
    Scenario.add_multicast t ~mode:Flid.Robust
      ~receivers:[ Scenario.receiver ~behavior:(Flid.Inflate_after 25.) () ] ()
  in
  let tcp1 = Scenario.add_tcp t in
  let tcp2 = Scenario.add_tcp t in
  Scenario.run t ~seconds:90.;
  let after m = Meter.mean_kbps m ~lo:40. ~hi:90. in
  let a1 = after (Flid.receiver_meter (List.hd f1.Scenario.receivers)) in
  let a2 = after (Flid.receiver_meter (List.hd f2.Scenario.receivers)) in
  let t1 = after (Mcc_transport.Tcp.delivered_meter tcp1) in
  let t2 = after (Mcc_transport.Tcp.delivered_meter tcp2) in
  Alcotest.(check bool)
    (Printf.sprintf "both capped (%.0f, %.0f)" a1 a2)
    true
    (a1 < 500. && a2 < 500.);
  Alcotest.(check bool)
    (Printf.sprintf "TCP survives (%.0f, %.0f)" t1 t2)
    true
    (t1 > 100. && t2 > 100.)

let test_two_bottleneck_chain () =
  (* src -- R1 ==1Mbps== R2 ==200kbps== R3 -- far receiver
                          \-- near receiver
     One FLID-DS session; the near receiver should sustain a higher
     level than the far one: per-branch heterogeneity on one tree. *)
  let sim = Sim.create () in
  let topo = Topology.create sim in
  let prng = Prng.create 85 in
  let r1 = Topology.add_node topo Node.Core_router in
  let r2 = Topology.add_node topo Node.Edge_router in
  let r3 = Topology.add_node topo Node.Edge_router in
  let src = Topology.add_node topo Node.Host in
  let near = Topology.add_node topo Node.Host in
  let far = Topology.add_node topo Node.Host in
  let connect ?(rate = 10e6) ?(buffer = 50_000) a b =
    ignore
      (Topology.connect topo a b ~rate_bps:rate ~delay_s:0.01
         ~buffer_bytes:buffer ())
  in
  connect src r1;
  connect ~rate:1_000_000. ~buffer:20_000 r1 r2;
  connect ~rate:200_000. ~buffer:6_000 r2 r3;
  connect near r2;
  connect far r3;
  Topology.compute_routes topo;
  let agent2 = Router_agent.attach topo r2 in
  let agent3 = Router_agent.attach topo r3 in
  ignore agent2;
  ignore agent3;
  let config =
    Flid.make_config ~id:1 ~base_group:0xA000 ~layering:(Defaults.layering ())
      ~slot_duration:Defaults.flid_ds_slot ~mode:Flid.Robust ()
  in
  let _sender =
    Flid.sender_start topo ~node:src ~prng:(Prng.split prng) config
  in
  let near_r =
    Flid.receiver_start topo ~host:near ~prng:(Prng.split prng) config
  in
  let far_r =
    Flid.receiver_start topo ~host:far ~prng:(Prng.split prng) config
  in
  Sim.run_until sim 80.;
  let near_kbps = Meter.mean_kbps (Flid.receiver_meter near_r) ~lo:30. ~hi:80. in
  let far_kbps = Meter.mean_kbps (Flid.receiver_meter far_r) ~lo:30. ~hi:80. in
  Alcotest.(check bool)
    (Printf.sprintf "near outruns far (%.0f vs %.0f)" near_kbps far_kbps)
    true
    (near_kbps > 1.5 *. far_kbps);
  Alcotest.(check bool)
    (Printf.sprintf "far tracks its bottleneck (%.0f)" far_kbps)
    true
    (far_kbps > 90. && far_kbps < 230.);
  Alcotest.(check bool)
    (Printf.sprintf "near tracks its bottleneck (%.0f)" near_kbps)
    true
    (near_kbps > 400.)

let test_determinism_across_full_scenario () =
  let run () =
    let t = Scenario.create ~seed:86 ~bottleneck_rate_bps:1_000_000. () in
    let s =
      Scenario.add_multicast t ~mode:Flid.Robust
        ~receivers:[ Scenario.receiver (); Scenario.receiver ~at:5. () ] ()
    in
    let tcp = Scenario.add_tcp t in
    ignore
      (Scenario.add_onoff_cbr t ~rate_bps:200_000. ~on_period:3. ~off_period:3.);
    Scenario.run t ~seconds:45.;
    ( List.map (fun r -> Meter.total_bytes (Flid.receiver_meter r))
        s.Scenario.receivers,
      Meter.total_bytes (Mcc_transport.Tcp.delivered_meter tcp),
      Sim.events_executed (Scenario.sim t) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let suite =
  ( "integration",
    [
      Alcotest.test_case "receiver leave prunes" `Slow test_receiver_leave_prunes;
      Alcotest.test_case "leave and rejoin" `Slow test_leave_and_rejoin;
      Alcotest.test_case "LAN-shared interface" `Slow
        test_lan_shared_interface_end_to_end;
      Alcotest.test_case "two attackers" `Slow test_two_attackers_robust;
      Alcotest.test_case "two-bottleneck chain" `Slow test_two_bottleneck_chain;
      Alcotest.test_case "full-scenario determinism" `Slow
        test_determinism_across_full_scenario;
    ] )
