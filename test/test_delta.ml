module Prng = Mcc_util.Prng
module Key = Mcc_delta.Key
module Layered = Mcc_delta.Layered
module Replicated = Mcc_delta.Replicated
module Field = Mcc_delta.Field
module Ecn = Mcc_delta.Ecn

let n = 5
let width = 16

(* Simulate one slot: [counts.(g-1)] packets per group, delivering each
   packet to the receiver unless [drop g seq] says to lose it. *)
let run_slot ?(upgrades = Array.make n false) ~counts ~drop () =
  let prng = Prng.create 123 in
  let sender = Layered.sender_create ~prng ~width ~groups:n ~upgrades in
  let receiver = Layered.receiver_create ~groups:n in
  for g = 1 to n do
    for i = 0 to counts.(g - 1) - 1 do
      let last = i = counts.(g - 1) - 1 in
      let component = Layered.next_component sender ~group:g ~last in
      let decrease = Layered.decrease_field sender ~group:g in
      if not (drop g i) then
        Layered.on_packet receiver ~group:g ~component ~decrease
    done
  done;
  (Layered.sender_keys sender, receiver)

let counts_default = [| 3; 4; 2; 5; 1 |]

let test_top_keys_no_loss () =
  let keys, receiver =
    run_slot ~counts:counts_default ~drop:(fun _ _ -> false) ()
  in
  let outcome =
    Layered.slot_end receiver ~level:n ~congested:false
      ~lost:(fun _ -> false)
      ~upgrade_to:(fun _ -> false)
  in
  Alcotest.(check int) "stays at level" n outcome.Layered.next_level;
  List.iter
    (fun (g, key) ->
      Alcotest.(check int)
        (Printf.sprintf "top key for group %d" g)
        keys.Layered.top.(g - 1) key)
    outcome.Layered.keys

let test_loss_breaks_top_key () =
  let keys, receiver =
    run_slot ~counts:counts_default ~drop:(fun g i -> g = 2 && i = 1) ()
  in
  (* The receiver knows it is congested; pretend it lies and computes the
     uncongested keys anyway: groups >= 2 must all be wrong. *)
  let outcome =
    Layered.slot_end receiver ~level:n ~congested:false
      ~lost:(fun _ -> false)
      ~upgrade_to:(fun _ -> false)
  in
  List.iter
    (fun (g, key) ->
      if g >= 2 then
        Alcotest.(check bool)
          (Printf.sprintf "group %d key broken" g)
          true
          (key <> keys.Layered.top.(g - 1))
      else
        Alcotest.(check int) "group 1 unaffected" keys.Layered.top.(0) key)
    outcome.Layered.keys

let test_decrease_keys_on_congestion () =
  let keys, receiver =
    run_slot ~counts:counts_default ~drop:(fun g i -> g = 4 && i = 2) ()
  in
  let outcome =
    Layered.slot_end receiver ~level:4 ~congested:true
      ~lost:(fun g -> g = 4)
      ~upgrade_to:(fun _ -> false)
  in
  Alcotest.(check int) "drops one level" 3 outcome.Layered.next_level;
  List.iter
    (fun (g, key) ->
      Alcotest.(check int)
        (Printf.sprintf "decrease key for group %d" g)
        keys.Layered.decrease.(g - 1) key)
    outcome.Layered.keys;
  Alcotest.(check int) "three keys" 3 (List.length outcome.Layered.keys)

let test_increase_key () =
  let upgrades = Array.make n false in
  upgrades.(3) <- true;
  (* upgrade to group 4 authorized *)
  let keys, receiver =
    run_slot ~upgrades ~counts:counts_default ~drop:(fun _ _ -> false) ()
  in
  let outcome =
    Layered.slot_end receiver ~level:3 ~congested:false
      ~lost:(fun _ -> false)
      ~upgrade_to:(fun g -> g = 4)
  in
  Alcotest.(check int) "upgrades" 4 outcome.Layered.next_level;
  let g4_key = List.assoc 4 outcome.Layered.keys in
  (match keys.Layered.increase.(3) with
  | Some iota -> Alcotest.(check int) "increase key matches" iota g4_key
  | None -> Alcotest.fail "sender should have an increase key");
  Alcotest.(check bool) "increase key accepted by keystore" true
    (List.mem g4_key (Layered.valid_keys keys ~group:4))

let test_contradiction_resolution () =
  (* Loss confined to group g while an upgrade to g is authorized: the
     receiver keeps g using the increase key (paper Section 3.1.1). *)
  let upgrades = Array.make n false in
  upgrades.(2) <- true;
  (* upgrade to group 3 *)
  let keys, receiver =
    run_slot ~upgrades ~counts:counts_default ~drop:(fun g i -> g = 3 && i = 0) ()
  in
  let outcome =
    Layered.slot_end receiver ~level:3 ~congested:true
      ~lost:(fun g -> g = 3)
      ~upgrade_to:(fun g -> g = 3)
  in
  Alcotest.(check int) "keeps level" 3 outcome.Layered.next_level;
  let g3_key = List.assoc 3 outcome.Layered.keys in
  Alcotest.(check bool) "uses the increase key" true
    (List.mem g3_key (Layered.valid_keys keys ~group:3))

let test_total_group_loss_limits_prefix () =
  (* Group 3 loses everything, taking decrease key delta_2 (carried in
     group 3's decrease fields) with it: the reachable prefix ends at
     group 1, forcing the receiver down more than one level — exactly
     the behaviour the paper describes for a fully lost group. *)
  let _, receiver =
    run_slot ~counts:counts_default ~drop:(fun g _ -> g = 3) ()
  in
  let outcome =
    Layered.slot_end receiver ~level:5 ~congested:true
      ~lost:(fun g -> g = 3)
      ~upgrade_to:(fun _ -> false)
  in
  Alcotest.(check int) "forced below g-1" 1 outcome.Layered.next_level

let test_minimal_group_congested () =
  let _, receiver =
    run_slot ~counts:counts_default ~drop:(fun g i -> g = 1 && i = 0) ()
  in
  let outcome =
    Layered.slot_end receiver ~level:1 ~congested:true
      ~lost:(fun g -> g = 1)
      ~upgrade_to:(fun _ -> false)
  in
  Alcotest.(check int) "leaves session" 0 outcome.Layered.next_level;
  Alcotest.(check int) "no keys" 0 (List.length outcome.Layered.keys)

let test_single_packet_group () =
  (* A group transmitting exactly one packet: the single component must
     close the accumulator correctly. *)
  let keys, receiver =
    run_slot ~counts:[| 1; 1; 1; 1; 1 |] ~drop:(fun _ _ -> false) ()
  in
  let outcome =
    Layered.slot_end receiver ~level:n ~congested:false
      ~lost:(fun _ -> false)
      ~upgrade_to:(fun _ -> false)
  in
  List.iter
    (fun (g, key) ->
      Alcotest.(check int) "top key" keys.Layered.top.(g - 1) key)
    outcome.Layered.keys

let test_sender_precompute_stable () =
  (* Keys read before emitting any packet equal the keys implied by the
     emitted components: the precomputation property (paper Fig. 4). *)
  let prng = Prng.create 9 in
  let sender =
    Layered.sender_create ~prng ~width ~groups:3 ~upgrades:(Array.make 3 false)
  in
  let before = (Layered.sender_keys sender).Layered.top.(2) in
  let xor = ref 0 in
  for g = 1 to 3 do
    for i = 0 to 3 do
      xor := !xor lxor Layered.next_component sender ~group:g ~last:(i = 3)
    done
  done;
  Alcotest.(check int) "lambda_3 = XOR of all components" before !xor

let test_closed_slot_raises () =
  let prng = Prng.create 10 in
  let sender =
    Layered.sender_create ~prng ~width ~groups:2 ~upgrades:(Array.make 2 false)
  in
  ignore (Layered.next_component sender ~group:1 ~last:true);
  Alcotest.(check bool) "second close raises" true
    (try
       ignore (Layered.next_component sender ~group:1 ~last:false);
       false
     with Invalid_argument _ -> true)

(* Property: for random loss patterns, the uncongested reconstruction of
   lambda_g is correct iff no packet of groups 1..g was lost. *)
let prop_top_key_iff_no_loss =
  QCheck.Test.make ~name:"top key reconstructible iff no loss below" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.return 12) bool))
    (fun (seed, drops) ->
      let drops = Array.of_list drops in
      let counts = [| 3; 2; 3; 2; 2 |] in
      let offsets = [| 0; 3; 5; 8; 10 |] in
      let drop g i =
        let idx = offsets.(g - 1) + i in
        idx < Array.length drops && drops.(idx)
      in
      let prng = Prng.create (seed + 1) in
      (* 48-bit keys: an accidental XOR collision (which would make a
         lossy reconstruction "succeed") becomes a 2^-48 event. *)
      let sender =
        Layered.sender_create ~prng ~width:48 ~groups:n
          ~upgrades:(Array.make n false)
      in
      let receiver = Layered.receiver_create ~groups:n in
      for g = 1 to n do
        for i = 0 to counts.(g - 1) - 1 do
          let last = i = counts.(g - 1) - 1 in
          let component = Layered.next_component sender ~group:g ~last in
          let decrease = Layered.decrease_field sender ~group:g in
          if not (drop g i) then
            Layered.on_packet receiver ~group:g ~component ~decrease
        done
      done;
      let keys = Layered.sender_keys sender in
      let outcome =
        Layered.slot_end receiver ~level:n ~congested:false
          ~lost:(fun _ -> false)
          ~upgrade_to:(fun _ -> false)
      in
      List.for_all
        (fun (g, key) ->
          let any_loss =
            List.exists
              (fun g' ->
                List.exists (fun i -> drop g' i) (List.init counts.(g' - 1) Fun.id))
              (List.init g (fun i -> i + 1))
          in
          if any_loss then key <> keys.Layered.top.(g - 1)
          else key = keys.Layered.top.(g - 1))
        outcome.Layered.keys)

(* --- replicated --------------------------------------------------------- *)

let run_replicated ?(upgrades = Array.make n false) ~counts ~drop () =
  let prng = Prng.create 77 in
  let sender = Replicated.sender_create ~prng ~width ~groups:n ~upgrades in
  let receiver = Replicated.receiver_create ~groups:n in
  for g = 1 to n do
    for i = 0 to counts.(g - 1) - 1 do
      let last = i = counts.(g - 1) - 1 in
      let component = Replicated.next_component sender ~group:g ~last in
      let decrease = Replicated.decrease_field sender ~group:g in
      if not (drop g i) then
        Replicated.on_packet receiver ~group:g ~component ~decrease
    done
  done;
  (Replicated.sender_keys sender, receiver)

let test_replicated_top () =
  let keys, receiver =
    run_replicated ~counts:counts_default ~drop:(fun _ _ -> false) ()
  in
  let outcome =
    Replicated.slot_end receiver ~group:3 ~congested:false
      ~upgrade_to:(fun _ -> false)
  in
  Alcotest.(check int) "stays" 3 outcome.Replicated.next_group;
  (match outcome.Replicated.key with
  | Some k -> Alcotest.(check int) "top key" keys.Replicated.top.(2) k
  | None -> Alcotest.fail "expected a key")

let test_replicated_independence () =
  (* Loss in group 2 must not affect a receiver of group 3: per-group
     keys are independent in replicated sessions. *)
  let keys, receiver =
    run_replicated ~counts:counts_default ~drop:(fun g _ -> g = 2) ()
  in
  let outcome =
    Replicated.slot_end receiver ~group:3 ~congested:false
      ~upgrade_to:(fun _ -> false)
  in
  match outcome.Replicated.key with
  | Some k -> Alcotest.(check int) "unaffected" keys.Replicated.top.(2) k
  | None -> Alcotest.fail "expected a key"

let test_replicated_decrease () =
  let keys, receiver =
    run_replicated ~counts:counts_default ~drop:(fun g i -> g = 3 && i = 1) ()
  in
  let outcome =
    Replicated.slot_end receiver ~group:3 ~congested:true
      ~upgrade_to:(fun _ -> false)
  in
  Alcotest.(check int) "switches down" 2 outcome.Replicated.next_group;
  match outcome.Replicated.key with
  | Some k ->
      Alcotest.(check int) "decrease key of group 2" keys.Replicated.decrease.(1) k;
      Alcotest.(check bool) "valid at router" true
        (List.mem k (Replicated.valid_keys keys ~group:2))
  | None -> Alcotest.fail "expected a key"

let test_replicated_upgrade () =
  let upgrades = Array.make n false in
  upgrades.(3) <- true;
  let keys, receiver =
    run_replicated ~upgrades ~counts:counts_default ~drop:(fun _ _ -> false) ()
  in
  let outcome =
    Replicated.slot_end receiver ~group:3 ~congested:false
      ~upgrade_to:(fun g -> g = 4)
  in
  Alcotest.(check int) "switches up" 4 outcome.Replicated.next_group;
  match outcome.Replicated.key with
  | Some k ->
      Alcotest.(check bool) "increase key valid for group 4" true
        (List.mem k (Replicated.valid_keys keys ~group:4))
  | None -> Alcotest.fail "expected a key"

let test_replicated_minimal_congested () =
  let _, receiver =
    run_replicated ~counts:counts_default ~drop:(fun g i -> g = 1 && i = 0) ()
  in
  let outcome =
    Replicated.slot_end receiver ~group:1 ~congested:true
      ~upgrade_to:(fun _ -> false)
  in
  Alcotest.(check int) "leaves" 0 outcome.Replicated.next_group

(* Property: replicated keys are per-group independent — loss in group j
   breaks exactly group j's top key and no other. *)
let prop_replicated_independence =
  QCheck.Test.make ~name:"replicated keys independent across groups" ~count:150
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, lossy_group) ->
      let prng = Prng.create (seed + 11) in
      let sender =
        Replicated.sender_create ~prng ~width:48 ~groups:n
          ~upgrades:(Array.make n false)
      in
      let receiver = Replicated.receiver_create ~groups:n in
      for g = 1 to n do
        for i = 0 to 2 do
          let last = i = 2 in
          let component = Replicated.next_component sender ~group:g ~last in
          if not (g = lossy_group && i = 1) then
            Replicated.on_packet receiver ~group:g ~component ~decrease:None
        done
      done;
      let keys = Replicated.sender_keys sender in
      List.for_all
        (fun g ->
          let outcome =
            Replicated.slot_end receiver ~group:g ~congested:false
              ~upgrade_to:(fun _ -> false)
          in
          match outcome.Replicated.key with
          | Some k ->
              if g = lossy_group then k <> keys.Replicated.top.(g - 1)
              else k = keys.Replicated.top.(g - 1)
          | None -> false)
        (List.init n (fun i -> i + 1)))

(* --- ECN / Field -------------------------------------------------------- *)

let test_ecn_scrub_changes () =
  let prng = Prng.create 4 in
  for _ = 1 to 50 do
    let original = Key.nonce prng ~width in
    let scrubbed = Ecn.scrubbed_component prng ~width original in
    Alcotest.(check bool) "differs" true (scrubbed <> original)
  done

let test_ecn_scrub_field () =
  let prng = Prng.create 5 in
  let f = Field.make ~component:0x1234 ~decrease:(Some 7) in
  Ecn.scrub prng ~width f;
  Alcotest.(check bool) "component replaced" true (f.Field.component <> 0x1234);
  Alcotest.(check (option int)) "decrease kept" (Some 7) f.Field.decrease

let test_field_wire_bytes () =
  let f1 = Field.make ~component:1 ~decrease:None in
  let f2 = Field.make ~component:1 ~decrease:(Some 2) in
  Alcotest.(check int) "component only" 2 (Field.wire_bytes ~width:16 f1);
  Alcotest.(check int) "both fields" 4 (Field.wire_bytes ~width:16 f2)

let suite =
  ( "delta",
    [
      Alcotest.test_case "top keys, no loss" `Quick test_top_keys_no_loss;
      Alcotest.test_case "loss breaks top key" `Quick test_loss_breaks_top_key;
      Alcotest.test_case "decrease keys" `Quick test_decrease_keys_on_congestion;
      Alcotest.test_case "increase key" `Quick test_increase_key;
      Alcotest.test_case "contradiction resolution" `Quick
        test_contradiction_resolution;
      Alcotest.test_case "total group loss" `Quick
        test_total_group_loss_limits_prefix;
      Alcotest.test_case "minimal group congested" `Quick
        test_minimal_group_congested;
      Alcotest.test_case "single-packet groups" `Quick test_single_packet_group;
      Alcotest.test_case "sender precompute" `Quick test_sender_precompute_stable;
      Alcotest.test_case "closed slot raises" `Quick test_closed_slot_raises;
      QCheck_alcotest.to_alcotest prop_top_key_iff_no_loss;
      Alcotest.test_case "replicated top key" `Quick test_replicated_top;
      Alcotest.test_case "replicated independence" `Quick
        test_replicated_independence;
      Alcotest.test_case "replicated decrease" `Quick test_replicated_decrease;
      Alcotest.test_case "replicated upgrade" `Quick test_replicated_upgrade;
      Alcotest.test_case "replicated minimal congested" `Quick
        test_replicated_minimal_congested;
      QCheck_alcotest.to_alcotest prop_replicated_independence;
      Alcotest.test_case "ecn scrub changes component" `Quick
        test_ecn_scrub_changes;
      Alcotest.test_case "ecn scrub field" `Quick test_ecn_scrub_field;
      Alcotest.test_case "field wire bytes" `Quick test_field_wire_bytes;
    ] )
