(* Differential tests for the scheduler backends.

   The Scheduler contract promises that every backend pops the same
   (time, value) sequence for the same pushes — the backend choice is a
   performance knob, never a semantics knob.  These tests drive heap
   and wheel through randomized push/pop interleavings (with deliberate
   ties, sub-tick spacings and multi-level horizons) and require the
   sequences to match element for element, then check the same promise
   end-to-end: a Runner batch must emit byte-identical deterministic
   output whichever backend and job count it runs on. *)

module Scheduler = Mcc_engine.Scheduler
module Runner = Mcc_core.Runner
module Sink = Mcc_core.Sink
module Spec = Mcc_core.Spec
module Flid = Mcc_mcast.Flid
module Prng = Mcc_util.Prng

(* Draw times that stress every ordering path: exact ties (same float),
   sub-tick ties (distinct floats quantising to one wheel bucket),
   level-0 neighbours, higher wheel levels, and the overflow horizon. *)
let random_time prng =
  match Prng.int prng 6 with
  | 0 -> 1e-3 *. float_of_int (Prng.int prng 20) (* exact ties *)
  | 1 -> 1e-3 +. (1e-8 *. float_of_int (Prng.int prng 50)) (* sub-tick *)
  | 2 -> Prng.float prng *. 8e-3 (* level 0 *)
  | 3 -> Prng.float prng *. 2. (* levels 1-2 *)
  | 4 -> Prng.float prng *. 3600. (* level 3 *)
  | _ -> 140000. +. (Prng.float prng *. 40000.) (* overflow *)

let drain q =
  let rec go acc =
    match q.Scheduler.pop () with
    | None -> List.rev acc
    | Some (t, v) -> go ((t, v) :: acc)
  in
  go []

let check_same_event msg (t1, v1) (t2, v2) =
  Alcotest.(check (float 0.)) (msg ^ " time") t1 t2;
  Alcotest.(check int) (msg ^ " value") v1 v2

(* Random push/pop interleavings, including a mid-trial clear-then-reuse
   on some trials: both backends must pop identical sequences at every
   step, and tie-break sequence numbers must restart identically after
   [clear]. *)
let test_differential_interleaved () =
  let prng = Prng.create 2003 in
  for trial = 1 to 40 do
    let h = Scheduler.instantiate Scheduler.heap () in
    let w = Scheduler.instantiate Scheduler.wheel () in
    let next = ref 0 in
    let ops = 200 + Prng.int prng 200 in
    for op = 1 to ops do
      match Prng.int prng 10 with
      | 0 | 1 | 2 ->
          (* pop from both, compare *)
          let ph = h.Scheduler.pop () and pw = w.Scheduler.pop () in
          (match (ph, pw) with
          | None, None -> ()
          | Some e1, Some e2 ->
              check_same_event
                (Printf.sprintf "trial %d op %d" trial op)
                e1 e2
          | _ ->
              Alcotest.failf "trial %d op %d: one backend empty" trial op)
      | 3 when trial mod 7 = 0 ->
          h.Scheduler.clear ();
          w.Scheduler.clear ();
          Alcotest.(check bool)
            "both empty after clear" true
            (h.Scheduler.is_empty () && w.Scheduler.is_empty ())
      | _ ->
          let t = random_time prng in
          incr next;
          h.Scheduler.push ~time:t !next;
          w.Scheduler.push ~time:t !next
    done;
    Alcotest.(check int)
      (Printf.sprintf "trial %d sizes" trial)
      (h.Scheduler.size ()) (w.Scheduler.size ());
    let dh = drain h and dw = drain w in
    List.iter2 (check_same_event (Printf.sprintf "trial %d drain" trial)) dh dw
  done

(* Heavy same-bucket batches: thousands of events inside one wheel tick
   exercise the drain heapsort and the sorted drain_insert path (pushes
   landing on the tick currently draining). *)
let test_differential_same_tick () =
  let prng = Prng.create 411 in
  let h = Scheduler.instantiate Scheduler.heap () in
  let w = Scheduler.instantiate Scheduler.wheel () in
  for i = 1 to 2000 do
    let t = 5e-3 +. (1e-9 *. float_of_int (Prng.int prng 300)) in
    h.Scheduler.push ~time:t i;
    w.Scheduler.push ~time:t i
  done;
  (* pop half, then push more onto the draining tick *)
  for _ = 1 to 1000 do
    match (h.Scheduler.pop (), w.Scheduler.pop ()) with
    | Some e1, Some e2 -> check_same_event "same-tick pop" e1 e2
    | _ -> Alcotest.fail "same-tick: unexpected empty"
  done;
  for i = 2001 to 2500 do
    let t = 5e-3 +. (1e-9 *. float_of_int (Prng.int prng 300)) in
    h.Scheduler.push ~time:t i;
    w.Scheduler.push ~time:t i
  done;
  List.iter2 (check_same_event "same-tick drain") (drain h) (drain w)

(* pop_into / pop_before / next_before agree with pop on both backends,
   and leave the cell untouched when they decline. *)
let test_bounded_pop_contract () =
  List.iter
    (fun backend ->
      let name = Scheduler.backend_name backend in
      let q = Scheduler.instantiate backend () in
      let cell = ref (-1.) in
      Alcotest.(check int)
        (name ^ " empty pop_into default")
        0
        (q.Scheduler.pop_into cell 0);
      Alcotest.(check (float 0.)) (name ^ " cell untouched") (-1.) !cell;
      q.Scheduler.push ~time:2. 22;
      q.Scheduler.push ~time:1. 11;
      q.Scheduler.push ~time:3. 33;
      Alcotest.(check bool)
        (name ^ " next_before 0.5") false
        (q.Scheduler.next_before 0.5);
      Alcotest.(check bool)
        (name ^ " next_before 1.0") true
        (q.Scheduler.next_before 1.0);
      Alcotest.(check int)
        (name ^ " pop_before declines")
        0
        (q.Scheduler.pop_before cell ~bound:0.5 0);
      Alcotest.(check (float 0.)) (name ^ " cell still untouched") (-1.) !cell;
      Alcotest.(check int)
        (name ^ " pop_before pops")
        11
        (q.Scheduler.pop_before cell ~bound:1.5 0);
      Alcotest.(check (float 0.)) (name ^ " cell time") 1. !cell;
      Alcotest.(check int)
        (name ^ " pop_into pops")
        22
        (q.Scheduler.pop_into cell 0);
      Alcotest.(check (float 0.)) (name ^ " cell time 2") 2. !cell;
      Alcotest.(check int) (name ^ " one left") 1 (q.Scheduler.size ()))
    Scheduler.all

(* A bounded loop over random times pops exactly the events <= bound,
   identically on both backends. *)
let test_pop_before_differential () =
  let prng = Prng.create 77 in
  let h = Scheduler.instantiate Scheduler.heap () in
  let w = Scheduler.instantiate Scheduler.wheel () in
  for i = 1 to 500 do
    let t = random_time prng in
    h.Scheduler.push ~time:t i;
    w.Scheduler.push ~time:t i
  done;
  let cell_h = ref 0. and cell_w = ref 0. in
  List.iter
    (fun bound ->
      let continue = ref true in
      while !continue do
        let vh = h.Scheduler.pop_before cell_h ~bound 0 in
        let vw = w.Scheduler.pop_before cell_w ~bound 0 in
        Alcotest.(check int) "bounded value" vh vw;
        if vh = 0 then continue := false
        else Alcotest.(check (float 0.)) "bounded time" !cell_h !cell_w
      done)
    [ 1e-3; 5e-3; 1.; 3600.; infinity ];
  Alcotest.(check bool) "heap drained" true (h.Scheduler.is_empty ());
  Alcotest.(check bool) "wheel drained" true (w.Scheduler.is_empty ())

(* End-to-end: a Runner batch's sink output must not depend on the
   scheduler backend or the job count.  Everything before the profile is
   the deterministic record; the profile legitimately differs (it names
   the backend and its queue capacity), so each line is cut there. *)
let strip_profile s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let marker = ",\"profile\":" in
         let m = String.length marker in
         let rec find i =
           if i + m > String.length line then line
           else if String.sub line i m = marker then String.sub line 0 i
           else find (i + 1)
         in
         find 0)
  |> String.concat "\n"

let batch () =
  List.map
    (fun (name, spec) ->
      { Runner.name; group = name; doc = name;
        spec = Spec.scale_time spec ~factor:0.1 })
    [
      ("attack", Spec.Attack { Spec.default_attack with Spec.mode = Flid.Robust });
      ("sweep2", Spec.Sweep { Spec.default_sweep with Spec.sessions = 2 });
    ]

let capture ~jobs ~sched =
  let jsonl = Buffer.create 4096 in
  ignore
    (Runner.run_batch ~jobs ~sched
       ~sinks:[ Sink.jsonl (Buffer.add_string jsonl) ]
       (batch ()));
  Buffer.contents jsonl

let test_runner_backend_identical () =
  let outputs =
    List.concat_map
      (fun sched ->
        List.map (fun jobs -> strip_profile (capture ~jobs ~sched)) [ 1; 4 ])
      Scheduler.all
  in
  match outputs with
  | first :: rest ->
      Alcotest.(check bool) "output non-empty" true (String.length first > 0);
      List.iteri
        (fun i other ->
          Alcotest.(check string)
            (Printf.sprintf "backend/jobs combination %d matches" (i + 1))
            first other)
        rest
  | [] -> Alcotest.fail "no outputs"

let suite =
  ( "scheduler",
    [
      Alcotest.test_case "differential: random interleavings" `Quick
        test_differential_interleaved;
      Alcotest.test_case "differential: same-tick batches" `Quick
        test_differential_same_tick;
      Alcotest.test_case "bounded pop contract" `Quick test_bounded_pop_contract;
      Alcotest.test_case "differential: pop_before" `Quick
        test_pop_before_differential;
      Alcotest.test_case "runner output backend-independent" `Slow
        test_runner_backend_identical;
    ] )
