(* Quick developer smoke test: one FLID-DL session with an attacker next
   to a well-behaved session and two TCP flows (the paper's Figure 1
   setting), then the same with FLID-DS (Figure 7). *)

module Scenario = Mcc_core.Scenario
module Flid = Mcc_mcast.Flid
module Meter = Mcc_util.Meter
module Tcp = Mcc_transport.Tcp

let run_case ~mode ~label =
  let t = Scenario.create ~seed:7 ~bottleneck_rate_bps:1_000_000. () in
  let f1 =
    Scenario.add_multicast t ~mode
      ~receivers:[ Scenario.receiver ~behavior:(Flid.Inflate_after 100.) () ]
      ()
  in
  let f2 =
    Scenario.add_multicast t ~mode ~receivers:[ Scenario.receiver () ] ()
  in
  let t1 = Scenario.add_tcp t in
  let t2 = Scenario.add_tcp t in
  Scenario.run t ~seconds:200.;
  let m r = Flid.receiver_meter r in
  let kbps meter ~lo ~hi = Meter.mean_kbps meter ~lo ~hi in
  let r1 = List.hd f1.Scenario.receivers in
  let r2 = List.hd f2.Scenario.receivers in
  Printf.printf "== %s ==\n" label;
  Printf.printf
    "  before attack (40-100 s): F1 %.0f  F2 %.0f  T1 %.0f  T2 %.0f kbps\n"
    (kbps (m r1) ~lo:40. ~hi:100.)
    (kbps (m r2) ~lo:40. ~hi:100.)
    (kbps (Tcp.delivered_meter t1) ~lo:40. ~hi:100.)
    (kbps (Tcp.delivered_meter t2) ~lo:40. ~hi:100.);
  Printf.printf
    "  during attack (120-200 s): F1 %.0f  F2 %.0f  T1 %.0f  T2 %.0f kbps\n"
    (kbps (m r1) ~lo:120. ~hi:200.)
    (kbps (m r2) ~lo:120. ~hi:200.)
    (kbps (Tcp.delivered_meter t1) ~lo:120. ~hi:200.)
    (kbps (Tcp.delivered_meter t2) ~lo:120. ~hi:200.);
  Printf.printf "  F1 level %d, F2 level %d, drops %d, events %d\n%!"
    (Flid.receiver_level r1) (Flid.receiver_level r2)
    (Scenario.bottleneck_drops t)
    (Mcc_engine.Sim.events_executed (Scenario.sim t))

let () =
  run_case ~mode:Flid.Plain ~label:"FLID-DL (Figure 1: attack succeeds)";
  run_case ~mode:Flid.Robust ~label:"FLID-DS (Figure 7: attack blocked)"
