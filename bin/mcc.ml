(* Command-line driver for the paper's experiments.

   Examples:
     mcc attack --mode robust --duration 200
     mcc sweep --mode plain --sessions 1,2,4,8
     mcc responsiveness --mode robust
     mcc rtt --mode robust --receivers 20
     mcc convergence --mode plain
     mcc overhead --by groups
*)

open Cmdliner
module E = Mcc_core.Experiments
module Report = Mcc_core.Report
module Flid = Mcc_mcast.Flid

let fmt = Format.std_formatter

(* --- common options ----------------------------------------------------- *)

let mode =
  let parse = function
    | "plain" | "flid-dl" -> Ok Flid.Plain
    | "robust" | "flid-ds" -> Ok Flid.Robust
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (plain|robust)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Flid.Plain -> "plain" | Flid.Robust -> "robust")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Flid.Robust
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Protocol variant: $(b,plain) (FLID-DL) or $(b,robust) (FLID-DS).")

let duration default =
  Arg.(
    value
    & opt float default
    & info [ "d"; "duration" ] ~docv:"SECONDS"
        ~doc:"Simulated duration in seconds.")

let seed =
  Arg.(
    value
    & opt int 7
    & info [ "s"; "seed" ] ~docv:"SEED"
        ~doc:"Simulation seed; runs are deterministic per seed.")

(* --- subcommands --------------------------------------------------------- *)

let attack_cmd =
  let run mode duration seed attack_at =
    Report.heading fmt "Inflated subscription (paper Figures 1 / 7)";
    Report.attack fmt (E.attack ~seed ~duration ~attack_at ~mode ())
  in
  let attack_at =
    Arg.(
      value
      & opt float 100.
      & info [ "attack-at" ] ~docv:"SECONDS"
          ~doc:"Time at which receiver F1 starts inflating.")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Two multicast + two TCP sessions; F1 inflates its subscription.")
    Term.(const run $ mode $ duration 200. $ seed $ attack_at)

let sessions_list =
  let parse s =
    try Ok (List.map int_of_string (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg "expected a comma-separated integer list")
  in
  let print ppf l =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int l))
  in
  Arg.(
    value
    & opt (conv (parse, print)) [ 1; 2; 4; 6; 8; 10; 12; 14; 16; 18 ]
    & info [ "sessions" ] ~docv:"N1,N2,..."
        ~doc:"Session counts to sweep (paper Figure 8a-8d).")

let sweep_cmd =
  let run mode duration seed counts cross =
    Report.heading fmt "Throughput vs number of sessions (paper Figure 8)";
    Report.sweep fmt
      (E.throughput_vs_sessions ~seed ~duration ~cross_traffic:cross ~mode
         ~counts ())
  in
  let cross =
    Arg.(
      value & flag
      & info [ "cross-traffic" ]
          ~doc:"Add one TCP flow per session plus an on-off CBR (Figure 8d).")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Average multicast throughput vs session count.")
    Term.(const run $ mode $ duration 200. $ seed $ sessions_list $ cross)

let responsiveness_cmd =
  let run mode duration seed =
    Report.heading fmt "Responsiveness to an 800 Kbps burst (paper Figure 8e)";
    Report.responsiveness fmt (E.responsiveness ~seed ~duration ~mode ())
  in
  Cmd.v
    (Cmd.info "responsiveness" ~doc:"CBR burst between 45 s and 75 s.")
    Term.(const run $ mode $ duration 100. $ seed)

let rtt_cmd =
  let run mode duration seed receivers =
    Report.heading fmt "Heterogeneous round-trip times (paper Figure 8f)";
    Report.rtt fmt (E.rtt_fairness ~seed ~duration ~receivers ~mode ())
  in
  let receivers =
    Arg.(
      value & opt int 20
      & info [ "receivers" ] ~docv:"N" ~doc:"Receivers spread over 30-220 ms.")
  in
  Cmd.v
    (Cmd.info "rtt" ~doc:"Throughput vs receiver RTT.")
    Term.(const run $ mode $ duration 200. $ seed $ receivers)

let convergence_cmd =
  let run mode duration seed =
    Report.heading fmt "Subscription convergence (paper Figures 8g / 8h)";
    Report.convergence fmt (E.convergence ~seed ~duration ~mode ())
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"Four receivers joining at 0/10/20/30 s converge to one level.")
    Term.(const run $ mode $ duration 40. $ seed)

let overhead_cmd =
  let run by duration seed =
    match by with
    | `Groups ->
        Report.heading fmt "Key-distribution overhead vs groups (Figure 9a)";
        Report.overhead fmt ~x_label:"groups"
          (E.overhead_vs_groups ~seed ~duration ())
    | `Slot ->
        Report.heading fmt "Key-distribution overhead vs slot (Figure 9b)";
        Report.overhead fmt ~x_label:"slot_s"
          (E.overhead_vs_slot ~seed ~duration ())
  in
  let by =
    let parse = function
      | "groups" -> Ok `Groups
      | "slot" -> Ok `Slot
      | s -> Error (`Msg (Printf.sprintf "unknown axis %S (groups|slot)" s))
    in
    let print ppf v =
      Format.pp_print_string ppf
        (match v with `Groups -> "groups" | `Slot -> "slot")
    in
    Arg.(
      value
      & opt (conv (parse, print)) `Groups
      & info [ "by" ] ~docv:"AXIS" ~doc:"Sweep $(b,groups) or $(b,slot).")
  in
  Cmd.v
    (Cmd.info "overhead" ~doc:"DELTA and SIGMA communication overhead.")
    Term.(const run $ by $ duration 30. $ seed)

let partial_cmd =
  let run duration seed =
    Report.heading fmt
      "Incremental deployment (paper Section 3.2.3): SIGMA vs legacy edge";
    let r = E.partial_deployment ~seed ~duration () in
    Report.row fmt "attacker behind SIGMA edge"
      [ ("kbps", r.E.protected_attacker_kbps) ];
    Report.row fmt "attacker behind legacy edge"
      [ ("kbps", r.E.unprotected_attacker_kbps) ];
    Report.row fmt "honest receiver" [ ("kbps", r.E.honest_kbps) ]
  in
  Cmd.v
    (Cmd.info "partial"
       ~doc:"The same inflation attack behind a SIGMA and a legacy edge router.")
    Term.(const run $ duration 120. $ seed)

let main =
  Cmd.group
    (Cmd.info "mcc" ~version:"1.0.0"
       ~doc:
         "Robust multicast congestion control: DELTA + SIGMA experiments \
          (Gorinsky et al.)")
    [
      attack_cmd;
      sweep_cmd;
      responsiveness_cmd;
      rtt_cmd;
      convergence_cmd;
      overhead_cmd;
      partial_cmd;
    ]

let () = exit (Cmd.eval main)
