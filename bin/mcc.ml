(* Command-line driver for the paper's experiments.

   Every experiment is a first-class spec in Mcc_core.Runner's registry;
   the per-figure subcommands build one spec with CLI knobs, while `run`
   executes whole registry batches across domains and streams results
   into pluggable sinks.

   Examples:
     mcc list
     mcc run --all --jobs 4 --json results.jsonl --csv results.csv
     mcc run --only fig8a,fig9a --quick --jobs 2
     mcc run --only fig1 --quick --metrics=-
     mcc run --only fig1 --series=fig1.jsonl --sample-dt 0.5 --quiet
     mcc trace --only fig1 --quick --filter sigma,link --out trace.jsonl
     mcc report --series fig1.jsonl --trace trace.jsonl
     mcc profile matrix-inflate-flid-delta+sigma --quick --folded out.folded
     mcc report --series fig1.jsonl --profile prof.json
     mcc attack --mode robust --duration 200
     mcc sweep --mode plain --sessions 1,2,4,8
     mcc responsiveness --mode robust
     mcc rtt --mode robust --receivers 20
     mcc convergence --mode plain
     mcc overhead --by groups
*)

open Cmdliner
module E = Mcc_core.Experiments
module Report = Mcc_core.Report
module Runner = Mcc_core.Runner
module Sink = Mcc_core.Sink
module Spec = Mcc_core.Spec
module Flid = Mcc_mcast.Flid
module Forensics = Mcc_core.Forensics
module Json = Mcc_core.Json
module Metrics = Mcc_obs.Metrics
module Profile = Mcc_obs.Profile
module Tracer = Mcc_obs.Tracer
module Ledger = Mcc_obs.Ledger
module Progress = Mcc_obs.Progress
module Crossrun = Mcc_core.Crossrun

let fmt = Format.std_formatter

(* --- common options ----------------------------------------------------- *)

let mode =
  let parse = function
    | "plain" | "flid-dl" -> Ok Flid.Plain
    | "robust" | "flid-ds" -> Ok Flid.Robust
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (plain|robust)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Flid.Plain -> "plain" | Flid.Robust -> "robust")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Flid.Robust
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Protocol variant: $(b,plain) (FLID-DL) or $(b,robust) (FLID-DS).")

let duration default =
  Arg.(
    value
    & opt float default
    & info [ "d"; "duration" ] ~docv:"SECONDS"
        ~doc:"Simulated duration in seconds.")

let seed default =
  Arg.(
    value
    & opt int default
    & info [ "s"; "seed" ] ~docv:"SEED"
        ~doc:"Simulation seed; runs are deterministic per seed.")

(* --- per-figure subcommands --------------------------------------------- *)

let attack_cmd =
  let run mode duration seed attack_at =
    Report.heading fmt "Inflated subscription (paper Figures 1 / 7)";
    Report.attack fmt (E.run_attack { Spec.seed; duration; attack_at; mode })
  in
  let attack_at =
    Arg.(
      value
      & opt float Spec.default_attack.Spec.attack_at
      & info [ "attack-at" ] ~docv:"SECONDS"
          ~doc:"Time at which receiver F1 starts inflating.")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Two multicast + two TCP sessions; F1 inflates its subscription.")
    Term.(
      const run $ mode $ duration 200. $ seed Spec.default_attack.Spec.seed
      $ attack_at)

let sessions_list =
  let parse s =
    try Ok (List.map int_of_string (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg "expected a comma-separated integer list")
  in
  let print ppf l =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int l))
  in
  Arg.(
    value
    & opt (conv (parse, print)) [ 1; 2; 4; 6; 8; 10; 12; 14; 16; 18 ]
    & info [ "sessions" ] ~docv:"N1,N2,..."
        ~doc:"Session counts to sweep (paper Figure 8a-8d).")

let jobs =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Run up to $(docv) experiments concurrently (OCaml domains).")

let sweep_cmd =
  let run mode duration seed counts cross jobs =
    Report.heading fmt "Throughput vs number of sessions (paper Figure 8)";
    let specs =
      List.map
        (fun sessions ->
          Spec.Sweep
            { Spec.seed = seed + sessions; duration; sessions;
              cross_traffic = cross; mode })
        counts
    in
    let points =
      Runner.run_specs ~jobs specs
      |> List.map (function E.Sweep_point p -> p | _ -> assert false)
    in
    Report.sweep fmt points
  in
  let cross =
    Arg.(
      value & flag
      & info [ "cross-traffic" ]
          ~doc:"Add one TCP flow per session plus an on-off CBR (Figure 8d).")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Average multicast throughput vs session count.")
    Term.(
      const run $ mode $ duration 200. $ seed 11 $ sessions_list $ cross $ jobs)

let responsiveness_cmd =
  let run mode duration seed =
    Report.heading fmt "Responsiveness to an 800 Kbps burst (paper Figure 8e)";
    Report.responsiveness fmt
      (E.run_responsiveness
         { Spec.default_responsiveness with Spec.seed; duration; mode })
  in
  Cmd.v
    (Cmd.info "responsiveness" ~doc:"CBR burst between 45 s and 75 s.")
    Term.(
      const run $ mode $ duration 100.
      $ seed Spec.default_responsiveness.Spec.seed)

let rtt_cmd =
  let run mode duration seed receivers =
    Report.heading fmt "Heterogeneous round-trip times (paper Figure 8f)";
    Report.rtt fmt (E.run_rtt { Spec.seed; duration; receivers; mode })
  in
  let receivers =
    Arg.(
      value & opt int Spec.default_rtt.Spec.receivers
      & info [ "receivers" ] ~docv:"N" ~doc:"Receivers spread over 30-220 ms.")
  in
  Cmd.v
    (Cmd.info "rtt" ~doc:"Throughput vs receiver RTT.")
    Term.(
      const run $ mode $ duration 200. $ seed Spec.default_rtt.Spec.seed
      $ receivers)

let convergence_cmd =
  let run mode duration seed =
    Report.heading fmt "Subscription convergence (paper Figures 8g / 8h)";
    Report.convergence fmt
      (E.run_convergence
         { Spec.default_convergence with Spec.seed; duration; mode })
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"Four receivers joining at 0/10/20/30 s converge to one level.")
    Term.(
      const run $ mode $ duration 40. $ seed Spec.default_convergence.Spec.seed)

let overhead_cmd =
  let run by duration seed jobs =
    let axis, values, x_label =
      match by with
      | `Groups ->
          Report.heading fmt "Key-distribution overhead vs groups (Figure 9a)";
          ( Spec.Groups,
            List.map (fun g -> (g, 0.25)) [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ],
            "groups" )
      | `Slot ->
          Report.heading fmt "Key-distribution overhead vs slot (Figure 9b)";
          ( Spec.Slot,
            List.map
              (fun s -> (10, s))
              [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ],
            "slot_s" )
    in
    let specs =
      List.map
        (fun (groups, slot) ->
          Spec.Overhead { Spec.seed; duration; groups; slot; axis })
        values
    in
    let points =
      Runner.run_specs ~jobs specs
      |> List.map (function E.Overhead p -> p | _ -> assert false)
    in
    Report.overhead fmt ~x_label points
  in
  let by =
    let parse = function
      | "groups" -> Ok `Groups
      | "slot" -> Ok `Slot
      | s -> Error (`Msg (Printf.sprintf "unknown axis %S (groups|slot)" s))
    in
    let print ppf v =
      Format.pp_print_string ppf
        (match v with `Groups -> "groups" | `Slot -> "slot")
    in
    Arg.(
      value
      & opt (conv (parse, print)) `Groups
      & info [ "by" ] ~docv:"AXIS" ~doc:"Sweep $(b,groups) or $(b,slot).")
  in
  Cmd.v
    (Cmd.info "overhead" ~doc:"DELTA and SIGMA communication overhead.")
    Term.(
      const run $ by $ duration 30. $ seed Spec.default_overhead.Spec.seed
      $ jobs)

let partial_cmd =
  let run duration seed =
    Report.heading fmt
      "Incremental deployment (paper Section 3.2.3): SIGMA vs legacy edge";
    Report.partial fmt
      (E.run_partial
         { Spec.seed; duration;
           attack_at = Spec.default_partial.Spec.attack_at })
  in
  Cmd.v
    (Cmd.info "partial"
       ~doc:"The same inflation attack behind a SIGMA and a legacy edge router.")
    Term.(const run $ duration 120. $ seed Spec.default_partial.Spec.seed)

(* --- registry batch commands -------------------------------------------- *)

let list_cmd =
  let run json =
    if json then
      (* One machine-readable document so external tooling (and ledger
         filters) can enumerate specs without scraping columns. *)
      print_string
        (Json.to_string
           (Json.Obj
              [
                ( "experiments",
                  Json.List
                    (List.map
                       (fun (e : Runner.entry) ->
                         Json.Obj
                           [
                             ("name", Json.String e.Runner.name);
                             ("group", Json.String e.Runner.group);
                             ("kind", Json.String (Spec.kind e.Runner.spec));
                             ("doc", Json.String e.Runner.doc);
                           ])
                       (Runner.all ())) );
                ( "groups",
                  Json.List
                    (List.map (fun g -> Json.String g) (Runner.groups ())) );
              ])
        ^ "\n")
    else begin
      Format.fprintf fmt "%-12s %-10s %-14s %s@." "NAME" "GROUP" "KIND" "DOC";
      List.iter
        (fun (e : Runner.entry) ->
          Format.fprintf fmt "%-12s %-10s %-14s %s@." e.Runner.name
            e.Runner.group
            (Spec.kind e.Runner.spec)
            e.Runner.doc)
        (Runner.all ());
      Format.fprintf fmt "@.%d experiments; groups: %s@."
        (List.length (Runner.all ()))
        (String.concat ", " (Runner.groups ()))
    end
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON document instead of the pretty table.")
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every registered experiment spec.")
    Term.(const run $ json)

(* Shared by `run` and `trace`: resolve --all/--only into registry
   entries and apply --quick. *)
let resolve_entries ~cmd ~all ~only ~quick =
  let entries =
    if all then Runner.all ()
    else
      match only with
      | [] ->
          Printf.eprintf "mcc %s: select experiments with %s--only NAME,...\n"
            cmd
            (if cmd = "run" then "--all or " else "");
          exit 2
      | names ->
          List.concat_map
            (fun name ->
              match Runner.find name with
              | [] ->
                  Printf.eprintf
                    "mcc %s: unknown experiment %S (try `mcc list`)\n" cmd name;
                  exit 2
              | entries -> entries)
            names
  in
  if quick then
    List.map
      (fun (e : Runner.entry) ->
        { e with Runner.spec = Spec.scale_time e.Runner.spec ~factor:0.25 })
      entries
  else entries

let only_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "only" ] ~docv:"NAME,..."
        ~doc:
          "Run the named experiments; a figure/group name (e.g. \
           $(b,fig8a)) selects all of its points.")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"Scale every duration by 1/4 for an abbreviated pass.")

(* Shared by `run` and `matrix`.  Backends fire identical schedules (see
   Mcc_engine.Scheduler), so this is purely a performance knob and never
   changes any sink output. *)
let sched_arg =
  let backend_conv =
    let parse s =
      match Mcc_engine.Scheduler.of_name s with
      | Ok b -> Ok b
      | Error e -> Error (`Msg e)
    in
    let print ppf b =
      Format.pp_print_string ppf (Mcc_engine.Scheduler.backend_name b)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "sched" ] ~docv:"BACKEND"
        ~doc:
          "Event-scheduler backend: $(b,heap) (default) or $(b,wheel). \
           Both fire identical schedules; $(b,wheel) is faster on \
           churn-heavy event populations.")

(* "-" means stdout; anything else is a file truncated at open. *)
let output_writer ~cmd path =
  if path = "-" then ((fun s -> print_string s), fun () -> flush stdout)
  else
    match open_out path with
    | oc -> (output_string oc, fun () -> close_out oc)
    | exception Sys_error msg ->
        Printf.eprintf "mcc %s: cannot open %s: %s\n" cmd path msg;
        exit 2

(* --- run ledger + live telemetry (shared by run/matrix/profile) --------- *)

let no_ledger_arg =
  Arg.(
    value & flag
    & info [ "no-ledger" ]
        ~doc:
          "Do not record this invocation in the run ledger \
           ($(b,.mcc/ledger), overridable via $(b,MCC_LEDGER)).")

(* Recording is telemetry: a ledger failure warns and never fails the
   run that produced the results. *)
let record_ledger ~no_ledger ~kind ~label ~payload ~wall =
  if not no_ledger then begin
    let dir = Ledger.default_dir () in
    match Ledger.append ~dir ~kind ~label ~payload ~wall () with
    | Ok _ -> ()
    | Error msg -> Printf.eprintf "mcc %s: ledger: %s (continuing)\n" kind msg
  end

let progress_arg =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "progress" ]
              ~doc:"Force the live stderr progress meter on." );
          ( Some false,
            info [ "no-progress" ]
              ~doc:"Force the live stderr progress meter off." );
        ])

(* Meter default: on when stderr is a terminal.  The meter is
   stderr-only and ephemeral — sinks are fed after the batch in entry
   order, so their bytes are identical with the meter on or off. *)
let progress_callback progress =
  let enabled =
    match progress with Some b -> b | None -> Unix.isatty Unix.stderr
  in
  if not enabled then None
  else
    Some
      (fun (s : Progress.sample) ->
        output_string stderr ("\r" ^ Progress.render s);
        if s.Progress.final then output_string stderr "\n";
        flush stderr)

let run_cmd =
  let run all only jobs sched quick json csv metrics metrics_format series
      sample_dt quiet progress no_ledger =
    if sample_dt <= 0. then begin
      Printf.eprintf "mcc run: --sample-dt must be positive\n";
      exit 2
    end;
    let entries = resolve_entries ~cmd:"run" ~all ~only ~quick in
    let series_writer =
      Option.map (fun path -> output_writer ~cmd:"run" path) series
    in
    let file_sinks =
      try
        (match json with None -> [] | Some path -> [ Sink.jsonl_file path ])
        @ (match csv with None -> [] | Some path -> [ Sink.csv_file path ])
        @ match series_writer with
          | Some (write, _) -> [ Sink.series_jsonl write ]
          | None -> []
      with Sys_error msg ->
        Printf.eprintf "mcc run: cannot open sink: %s\n" msg;
        exit 2
    in
    let sinks =
      (if quiet then [] else [ Sink.pretty fmt ]) @ file_sinks
    in
    let sample_dt = Option.map (fun _ -> sample_dt) series in
    let rows, elapsed =
      Profile.with_wall_clock (fun () ->
          Runner.run_batch ~jobs ?sched ?sample_dt ~sinks
            ?on_progress:(progress_callback progress) entries)
    in
    List.iter Sink.close sinks;
    (match series_writer with Some (_, close) -> close () | None -> ());
    (match metrics with
    | None -> ()
    | Some path -> (
        let write, close = output_writer ~cmd:"run" path in
        (match metrics_format with
        | `Json ->
            List.iter
              (fun (row : Runner.row) ->
                write
                  (Json.to_string
                     (Json.Obj
                        [
                          ("name", Json.String row.Runner.entry.Runner.name);
                          ("metrics", Metrics.values_json row.Runner.metrics);
                          (* wall-clock fields stay last on the line *)
                          ("profile", Profile.to_json row.Runner.profile);
                        ])
                  ^ "\n"))
              rows
        | `Openmetrics ->
            write
              (Metrics.openmetrics_page
                 (List.map
                    (fun (row : Runner.row) ->
                      ( [ ("run", row.Runner.entry.Runner.name) ],
                        row.Runner.metrics ))
                    rows)));
        close ()));
    record_ledger ~no_ledger ~kind:"run"
      ~label:(if all then "all" else String.concat "," only)
      ~payload:(Crossrun.run_payload ~command:"run" ~config:[] rows)
      ~wall:(Crossrun.run_wall ~recorded:(Profile.now ()) rows);
    if not quiet then
      Format.fprintf fmt "@.[%d experiments in %.1fs, jobs=%d]@."
        (List.length rows) elapsed jobs
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Run every registered experiment.")
  in
  let metrics =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write the metric snapshots; $(docv) defaults to $(b,-) \
             (stdout).  The default format is one JSON line per run with \
             snapshot and event-loop profile; see $(b,--metrics-format).")
  in
  let metrics_format =
    let parse = function
      | "json" -> Ok `Json
      | "openmetrics" -> Ok `Openmetrics
      | s ->
          Error (`Msg (Printf.sprintf "unknown format %S (json|openmetrics)" s))
    in
    let print ppf v =
      Format.pp_print_string ppf
        (match v with `Json -> "json" | `Openmetrics -> "openmetrics")
    in
    Arg.(
      value
      & opt (conv (parse, print)) `Json
      & info [ "metrics-format" ] ~docv:"FORMAT"
          ~doc:
            "$(b,--metrics) format: $(b,json) (default; one line per run, \
             profile last) or $(b,openmetrics) (one scrape-able text \
             exposition, runs distinguished by a $(b,run) label).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Append one JSON object per run.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH"
          ~doc:"Write summary metrics as name,group,metric,value rows.")
  in
  let series =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "series" ] ~docv:"PATH"
          ~doc:
            "Sample time series during each run and write one JSON line \
             per run (the $(b,mcc report) input format); $(docv) defaults \
             to $(b,-) (stdout).")
  in
  let sample_dt =
    Arg.(
      value & opt float 1.0
      & info [ "sample-dt" ] ~docv:"SECONDS"
          ~doc:"Sampling period for $(b,--series) (default 1.0).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Suppress the human-readable report.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a batch of registered experiments across domains, with JSONL, \
          CSV, metrics and time-series sinks.")
    Term.(
      const run $ all $ only_arg $ jobs $ sched_arg $ quick_arg $ json $ csv
      $ metrics $ metrics_format $ series $ sample_dt $ quiet $ progress_arg
      $ no_ledger_arg)

let trace_cmd =
  let run only out filters level quick =
    (match Tracer.check_components filters with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "mcc trace: %s\n" msg;
        exit 2);
    let entries = resolve_entries ~cmd:"trace" ~all:false ~only ~quick in
    let write, close = output_writer ~cmd:"trace" out in
    let components = if filters = [] then None else Some filters in
    (* Tracer sinks are domain-local, so the batch is forced onto this
       domain: jobs > 1 would silently lose every helper domain's
       stream. *)
    let sink = Tracer.jsonl ~min_level:level ?components write in
    let rows = Runner.run_batch ~jobs:1 entries in
    Tracer.remove sink;
    close ();
    Printf.eprintf "[traced %d experiment%s to %s]\n" (List.length rows)
      (if List.length rows = 1 then "" else "s")
      (if out = "-" then "stdout" else out)
  in
  let out =
    Arg.(
      value
      & opt string "-"
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:"Trace destination; $(b,-) (default) writes to stdout.")
  in
  let filters =
    Arg.(
      value
      & opt (list string) []
      & info [ "filter" ] ~docv:"COMPONENT,..."
          ~doc:
            "Keep only these components and their dotted descendants \
             (e.g. $(b,sigma) matches $(b,sigma.router)).")
  in
  let level =
    let parse = function
      | "debug" -> Ok Tracer.Debug
      | "info" -> Ok Tracer.Info
      | "warn" -> Ok Tracer.Warn
      | s -> Error (`Msg (Printf.sprintf "unknown level %S (debug|info|warn)" s))
    in
    let print ppf l = Format.pp_print_string ppf (Tracer.level_name l) in
    Arg.(
      value
      & opt (conv (parse, print)) Tracer.Debug
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Minimum severity: $(b,debug) (default), $(b,info), $(b,warn).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run experiments with structured event tracing enabled, writing \
          one JSON record per event.")
    Term.(const run $ only_arg $ out $ filters $ level $ quick_arg)

let matrix_cmd =
  let pick ~what ~str ~catalogue names =
    match names with
    | [] -> catalogue
    | names ->
        List.map
          (fun name ->
            match List.find_opt (fun k -> str k = name) catalogue with
            | Some k -> k
            | None ->
                Printf.eprintf "mcc matrix: unknown %s %S (choose from %s)\n"
                  what name
                  (String.concat ", " (List.map str catalogue));
                exit 2)
          names
  in
  let run jobs sched quick seed duration attack_at attacks protocols defences
      json csv out quiet progress no_ledger =
    let attack_names = attacks and protocol_names = protocols
    and defence_names = defences in
    let attacks =
      pick ~what:"attack" ~str:Spec.attack_str
        ~catalogue:Mcc_attack.Matrix.default_attacks attacks
    in
    let protocols =
      pick ~what:"protocol" ~str:Spec.protocol_str
        ~catalogue:Mcc_attack.Matrix.default_protocols protocols
    in
    let defences =
      pick ~what:"defence" ~str:Spec.defence_str
        ~catalogue:Mcc_attack.Matrix.default_defences defences
    in
    let entries =
      Mcc_attack.Matrix.entries ~seed ~duration ~attack_at ~attacks ~protocols
        ~defences ()
    in
    let entries =
      if quick then
        List.map
          (fun (e : Runner.entry) ->
            { e with Runner.spec = Spec.scale_time e.Runner.spec ~factor:0.25 })
          entries
      else entries
    in
    let sinks =
      try
        (match json with None -> [] | Some path -> [ Sink.jsonl_file path ])
        @ match csv with None -> [] | Some path -> [ Sink.csv_file path ]
      with Sys_error msg ->
        Printf.eprintf "mcc matrix: cannot open sink: %s\n" msg;
        exit 2
    in
    let rows, elapsed =
      Profile.with_wall_clock (fun () ->
          Mcc_attack.Matrix.run ~jobs ?sched ~sinks
            ?on_progress:(progress_callback progress) entries)
    in
    List.iter Sink.close sinks;
    let write, close = output_writer ~cmd:"matrix" out in
    write (Mcc_attack.Scorecard.to_string rows);
    close ();
    let selection names = match names with [] -> "all" | l -> String.concat "," l in
    record_ledger ~no_ledger ~kind:"matrix"
      ~label:
        (Printf.sprintf "%s/%s/%s" (selection attack_names)
           (selection protocol_names) (selection defence_names))
      ~payload:(Crossrun.run_payload ~command:"matrix" ~config:[] rows)
      ~wall:(Crossrun.run_wall ~recorded:(Profile.now ()) rows);
    if not quiet then
      Format.fprintf fmt "[%d matrix cells in %.1fs, jobs=%d%s]@."
        (List.length rows) elapsed jobs
        (match out with "-" -> "" | path -> "; scorecard: " ^ path)
  in
  let list_opt names doc =
    Arg.(value & opt (list string) [] & info names ~docv:"NAME,..." ~doc)
  in
  let attacks =
    list_opt [ "attacks" ]
      "Attack strategies to run (default all): $(b,inflate), $(b,pulse), \
       $(b,guess), $(b,replay), $(b,churn), $(b,collude)."
  in
  let protocols =
    list_opt [ "protocols" ]
      "Protocols to attack (default all): $(b,flid), $(b,rlm), \
       $(b,replicated), $(b,oversub)."
  in
  let defences =
    list_opt [ "defences" ]
      "Defences to evaluate (default all): $(b,plain), $(b,delta), \
       $(b,delta+sigma), $(b,delta+sigma+ecn)."
  in
  let attack_at =
    Arg.(
      value
      & opt float Spec.default_adversary.Spec.attack_at
      & info [ "attack-at" ] ~docv:"SECONDS"
          ~doc:"Time at which every cell's adversary activates.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write one JSON object per cell (byte-identical for any \
             $(b,--jobs)).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH"
          ~doc:"Write per-cell damage metrics as name,group,metric,value rows.")
  in
  let out =
    Arg.(
      value
      & opt string "-"
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:
            "Markdown scorecard destination; $(b,-) (default) writes to \
             stdout.")
  in
  let quiet =
    Arg.(
      value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the progress line.")
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Run the attack x protocol x defence evaluation matrix and render \
          the Markdown scorecard ranking defences per attack.")
    Term.(
      const run $ jobs $ sched_arg $ quick_arg
      $ seed Spec.default_adversary.Spec.seed
      $ duration Spec.default_adversary.Spec.duration
      $ attack_at $ attacks $ protocols $ defences $ json $ csv $ out $ quiet
      $ progress_arg $ no_ledger_arg)

let profile_cmd =
  (* `mcc profile` accepts anything `mcc run --only` does, plus matrix
     cells — the interesting profiles are attack cells, which live in
     the matrix grid rather than the figure registry. *)
  let find_entry name =
    match Runner.lookup name with
    | Some e -> e
    | None -> (
        match
          List.find_opt
            (fun (e : Runner.entry) -> e.Runner.name = name)
            (Mcc_attack.Matrix.entries ())
        with
        | Some e -> e
        | None ->
            Printf.eprintf
              "mcc profile: unknown entry %S (try `mcc list`, or a matrix \
               cell such as matrix-inflate-flid-delta+sigma)\n"
              name;
            exit 2)
  in
  let sched_stats_section fmt (p : Profile.t) =
    match p.Profile.sched_stats with
    | None -> ()
    | Some s ->
        Format.fprintf fmt "@.## Scheduler backend (%s)@.@." p.Profile.sched;
        Format.fprintf fmt "| stat | value |@.|---|---|@.";
        let row name v = Format.fprintf fmt "| %s | %s |@." name v in
        row "events pushed" (string_of_int s.Profile.pushes);
        row "queue size high-water" (string_of_int s.Profile.max_size);
        row "capacity trajectory"
          (match s.Profile.capacities with
          | [] -> "(no growth)"
          | l -> String.concat " -> " (List.map string_of_int l));
        (match s.Profile.level_places with
        | [] -> ()
        | places ->
            row "placements per wheel level"
              (String.concat ", "
                 (List.mapi (fun i n -> Printf.sprintf "L%d:%d" i n) places));
            row "overflow placements" (string_of_int s.Profile.overflow);
            row "draining-tick inserts" (string_of_int s.Profile.drain_inserts);
            row "cell free-list hits / misses"
              (Printf.sprintf "%d / %d" s.Profile.free_hits
                 s.Profile.free_misses));
        row "timer-handle pool hits / misses"
          (Printf.sprintf "%d / %d" s.Profile.pool_hits s.Profile.pool_misses)
  in
  let run name sched quick out folded json_path no_ledger =
    let entry = find_entry name in
    let spec =
      if quick then Spec.scale_time entry.Runner.spec ~factor:0.25
      else entry.Runner.spec
    in
    let inst = Runner.run_spec_instrumented ?sched spec in
    let attack_at =
      match spec with
      | Spec.Attack p -> Some p.Spec.attack_at
      | Spec.Partial p -> Some p.Spec.attack_at
      | Spec.Adversary p -> Some p.Spec.attack_at
      | _ -> None
    in
    let containment_s =
      match inst.Runner.i_result with
      | E.Adversary r -> r.E.containment_s
      | _ -> None
    in
    let p = inst.Runner.i_profile in
    let buf = Buffer.create 4096 in
    let bfmt = Format.formatter_of_buffer buf in
    Format.fprintf bfmt "# Profile: %s (%s)@.@." entry.Runner.name
      (Spec.kind spec);
    Format.fprintf bfmt "spec: `%s`@.@." (Json.to_string (Spec.to_json spec));
    Format.fprintf bfmt
      "%d events in %.3f s wall (%.0f events/s) on the %s scheduler@.@."
      p.Profile.events p.Profile.wall_s p.Profile.events_per_sec
      p.Profile.sched;
    Format.fprintf bfmt "## Self time@.@.%s"
      (Mcc_obs.Prof.to_markdown ~wall_s:p.Profile.wall_s inst.Runner.i_prof);
    sched_stats_section bfmt p;
    Forensics.render_lineage ?attack_at ?containment_s bfmt
      inst.Runner.i_lineage;
    Format.pp_print_flush bfmt ();
    let write, close = output_writer ~cmd:"profile" out in
    write (Buffer.contents buf);
    close ();
    (match folded with
    | None -> ()
    | Some path ->
        let write, close = output_writer ~cmd:"profile" path in
        write (Mcc_obs.Prof.folded inst.Runner.i_prof);
        close ());
    (match json_path with
    | None -> ()
    | Some path ->
        let write, close = output_writer ~cmd:"profile" path in
        write
          (Json.to_string
             (Json.Obj
                [
                  ("name", Json.String entry.Runner.name);
                  ("kind", Json.String (Spec.kind spec));
                  ("spec", Spec.to_json spec);
                  ("prof", Mcc_obs.Prof.to_json inst.Runner.i_prof);
                  ("lineage", Mcc_obs.Lineage.to_json inst.Runner.i_lineage);
                  (* wall-clock fields stay last in the document *)
                  ("profile", Profile.to_json p);
                ])
          ^ "\n");
        close ());
    (* An instrumented run recorded as a one-row batch, with the
       self-profiler table joining the wall suffix. *)
    let row =
      {
        Runner.entry = { entry with Runner.spec };
        result = inst.Runner.i_result;
        metrics = inst.Runner.i_metrics;
        series = [];
        profile = p;
      }
    in
    record_ledger ~no_ledger ~kind:"profile" ~label:entry.Runner.name
      ~payload:(Crossrun.run_payload ~command:"profile" ~config:[] [ row ])
      ~wall:
        (Crossrun.run_wall ~recorded:(Profile.now ()) [ row ]
        @ Crossrun.prof_wall inst.Runner.i_prof)
  in
  let entry_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ENTRY"
          ~doc:
            "Registry entry (see $(b,mcc list)) or matrix cell \
             ($(b,matrix-<attack>-<protocol>-<defence>)).")
  in
  let out =
    Arg.(
      value
      & opt string "-"
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:"Markdown profile destination; $(b,-) (default) = stdout.")
  in
  let folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"PATH"
          ~doc:
            "Write folded stacks ($(b,component;child <self-us>) per line) \
             for flamegraph.pl, inferno or speedscope.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write the whole profile — span tree, scheduler stats, packet \
             lineage — as one JSON document ($(b,mcc report --profile) \
             input).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one experiment under the engine self-profiler and packet \
          lineage, and render the component self-time table, scheduler \
          introspection and the containment critical path.")
    Term.(
      const run $ entry_arg $ sched_arg $ quick_arg $ out $ folded $ json
      $ no_ledger_arg)

let report_cmd =
  let read_lines path =
    match open_in path with
    | ic ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file ->
              close_in ic;
              List.rev acc
        in
        go []
    | exception Sys_error msg ->
        Printf.eprintf "mcc report: cannot open %s: %s\n" path msg;
        exit 2
  in
  let run series trace profile only width =
    let runs =
      match Forensics.parse_series_lines (read_lines series) with
      | Ok runs -> runs
      | Error msg ->
          Printf.eprintf "mcc report: %s: %s\n" series msg;
          exit 2
    in
    let trace_events =
      match trace with
      | None -> []
      | Some path -> (
          match Forensics.parse_trace_lines (read_lines path) with
          | Ok events -> events
          | Error msg ->
              Printf.eprintf "mcc report: %s: %s\n" path msg;
              exit 2)
    in
    let runs =
      match only with
      | [] -> runs
      | names ->
          List.filter
            (fun (r : Forensics.run) ->
              List.mem r.Forensics.name names
              || List.mem r.Forensics.group names)
            runs
    in
    if runs = [] then begin
      Printf.eprintf "mcc report: no sampled runs in %s%s\n" series
        (if only = [] then "" else " matching --only");
      exit 2
    end;
    List.iteri
      (fun i run ->
        if i > 0 then Format.fprintf fmt "@.---@.@.";
        Forensics.render ~width ~trace:trace_events fmt run)
      runs;
    (match profile with
    | None -> ()
    | Some path -> (
        match Json.of_string (String.concat "\n" (read_lines path)) with
        | Error msg ->
            Printf.eprintf "mcc report: %s: invalid JSON: %s\n" path msg;
            exit 2
        | Ok json -> (
            let attack_at =
              Option.bind
                (Option.bind (Json.member "spec" json)
                   (Json.member "attack_at"))
                Json.to_float_opt
            in
            let lineage =
              Option.value (Json.member "lineage" json) ~default:Json.Null
            in
            match Forensics.lineage_of_json lineage with
            | Error msg ->
                Printf.eprintf "mcc report: %s: %s\n" path msg;
                exit 2
            | Ok summary -> Forensics.render_lineage ?attack_at fmt summary)));
    Format.fprintf fmt "@."
  in
  let series =
    Arg.(
      required
      & opt (some string) None
      & info [ "series" ] ~docv:"PATH"
          ~doc:"Series JSONL written by $(b,mcc run --series).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Trace JSONL written by $(b,mcc trace); adds the key-failure \
             spans to the SIGMA timeline.")
  in
  let profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"PATH"
          ~doc:
            "Profile JSON written by $(b,mcc profile --json); appends the \
             per-hop containment-latency table and the containment \
             critical path.")
  in
  let width =
    Arg.(
      value & opt int 60
      & info [ "width" ] ~docv:"COLS"
          ~doc:"Sparkline width in characters (default 60).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render an attack-forensics report (sparklines, SIGMA timeline, \
          throughput recovery) from saved series and trace files, without \
          rerunning anything.")
    Term.(const run $ series $ trace $ profile $ only_arg $ width)

(* --- cross-run commands (ledger history + diffing) ---------------------- *)

let load_ledger ~cmd =
  let dir = Ledger.default_dir () in
  match Ledger.load ~dir with
  | Ok entries -> (dir, entries)
  | Error msg ->
      Printf.eprintf "mcc %s: %s\n" cmd msg;
      exit 2

let history_cmd =
  let run kind label metric last width =
    let dir, entries = load_ledger ~cmd:"history" in
    let entries =
      List.filter
        (fun (e : Ledger.entry) ->
          (match kind with None -> true | Some k -> String.equal e.Ledger.kind k)
          && match label with
             | None -> true
             | Some l -> String.equal e.Ledger.label l)
        entries
    in
    let entries =
      match last with
      | None -> entries
      | Some n ->
          let len = List.length entries in
          List.filteri (fun i _ -> i >= len - n) entries
    in
    if entries = [] then
      Printf.eprintf "mcc history: no matching entries in %s\n"
        (Ledger.file ~dir)
    else print_string (Crossrun.history_table ?metric ~width entries)
  in
  let kind =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Keep only entries of this kind: $(b,run), $(b,matrix), \
             $(b,profile) or $(b,bench).")
  in
  let label =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"LABEL"
          ~doc:
            "Keep only entries with this exact label (the recorded \
             selection, e.g. $(b,fig1)).")
  in
  let metric =
    Arg.(
      value
      & opt (some string) None
      & info [ "metric" ] ~docv:"NAME"
          ~doc:
            "Series for the value column and trend sparkline: a recorded \
             figure name, a wall field, or any summary/metrics key (e.g. \
             $(b,link.drops)).  Default $(b,events_per_sec).")
  in
  let last =
    Arg.(
      value
      & opt (some int) None
      & info [ "last" ] ~docv:"N" ~doc:"Keep only the N most recent entries.")
  in
  let width =
    Arg.(
      value & opt int 40
      & info [ "width" ] ~docv:"COLS"
          ~doc:"Trend sparkline width in characters (default 40).")
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "List run-ledger entries and render the trend of any figure or \
          metric across them.")
    Term.(const run $ kind $ label $ metric $ last $ width)

let diff_cmd =
  let resolve ~entries sel =
    if Sys.file_exists sel && not (Sys.is_directory sel) then begin
      let content =
        In_channel.with_open_bin sel In_channel.input_all
      in
      match Json.of_string (String.trim content) with
      | Error msg ->
          Printf.eprintf "mcc diff: %s: invalid JSON: %s\n" sel msg;
          exit 2
      | Ok json -> (
          match Crossrun.entry_of_document json with
          | Ok e -> e
          | Error msg ->
              Printf.eprintf "mcc diff: %s: %s\n" sel msg;
              exit 2)
    end
    else
      let pick n =
        match
          List.find_opt (fun (e : Ledger.entry) -> e.Ledger.seq = n) entries
        with
        | Some e -> e
        | None ->
            Printf.eprintf "mcc diff: no ledger entry #%d\n" n;
            exit 2
      in
      let nth_last n =
        let len = List.length entries in
        if len < n then begin
          Printf.eprintf "mcc diff: ledger has only %d entries\n" len;
          exit 2
        end
        else List.nth entries (len - n)
      in
      match int_of_string_opt sel with
      | Some n -> pick n
      | None -> (
          match sel with
          | "last" -> nth_last 1
          | "prev" -> nth_last 2
          | _ ->
              Printf.eprintf
                "mcc diff: %S is neither a ledger seq, last/prev, nor a \
                 JSON file\n"
                sel;
              exit 2)
  in
  let run a b threshold =
    let _, entries = load_ledger ~cmd:"diff" in
    let ea = resolve ~entries a and eb = resolve ~entries b in
    let report = Crossrun.diff ~threshold ea eb in
    print_string report.Crossrun.rendering;
    if report.Crossrun.regressions <> [] then exit 1
  in
  let sel position docv older =
    Arg.(
      required
      & pos position (some string) None
      & info [] ~docv
          ~doc:
            (Printf.sprintf
               "The %s entry: a ledger sequence number, $(b,last)/$(b,prev), \
                or a JSON file (a ledger entry or a flat figure object such \
                as the bench baseline)."
               older))
  in
  let threshold =
    Arg.(
      value & opt float 0.05
      & info [ "threshold" ] ~docv:"FRACTION"
          ~doc:
            "Relative figure drop flagged as a regression (default 0.05); \
             any flagged figure makes the exit status 1.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two ledger entries (or JSON files): deterministic-field \
          drift, figure deltas with regression highlighting, and profiler \
          self-time drift.  Exits 1 when a figure regressed beyond the \
          threshold.")
    Term.(const run $ sel 0 "A" "older" $ sel 1 "B" "newer" $ threshold)

(* --- workload ----------------------------------------------------------- *)

(* Referencing Build.run links the Mcc_workload library into the
   binary, which registers the Spec.Workload implementation hook (and
   makes workload entries runnable by every other subcommand too). *)
let _workload_impl = Mcc_workload.Build.run

let workload_dir = "workloads"

let workload_files ~cmd ~all files =
  if all then
    match Sys.readdir workload_dir with
    | exception Sys_error msg ->
        Printf.eprintf "mcc workload %s: %s\n" cmd msg;
        exit 2
    | names ->
        let names = Array.to_list names in
        let jsons =
          List.filter (fun n -> Filename.check_suffix n ".json") names
        in
        List.map (Filename.concat workload_dir) (List.sort String.compare jsons)
  else
    match files with
    | [] ->
        Printf.eprintf
          "mcc workload %s: name workload files, or use --all for every file \
           under %s/\n"
          cmd workload_dir;
        exit 2
    | files -> files

let load_workload ~cmd path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg ->
      Printf.eprintf "mcc workload %s: %s\n" cmd msg;
      exit 2
  | contents -> (
      match Json.of_string contents with
      | Error msg ->
          Printf.eprintf "mcc workload %s: %s: invalid JSON: %s\n" cmd path msg;
          exit 2
      | Ok json -> (
          match Mcc_workload.Schema.entries_of_json ~ctx:path json with
          | Error msg ->
              Printf.eprintf "mcc workload %s: %s\n" cmd msg;
              exit 2
          | Ok entries -> (contents, entries)))

let workload_all_arg =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:
          (Printf.sprintf "Every $(b,*.json) under $(b,%s/), in name order."
             workload_dir))

let workload_file_pos =
  Arg.(value & pos_all string [] & info [] ~docv:"FILE")

let workload_run_cmd =
  let run file jobs sched quick json csv quiet progress no_ledger =
    let contents, entries = load_workload ~cmd:"run" file in
    let entries =
      if quick then
        List.map
          (fun (e : Runner.entry) ->
            { e with Runner.spec = Spec.scale_time e.Runner.spec ~factor:0.25 })
          entries
      else entries
    in
    let sinks =
      try
        (if quiet then [] else [ Sink.pretty fmt ])
        @ (match json with None -> [] | Some path -> [ Sink.jsonl_file path ])
        @ match csv with None -> [] | Some path -> [ Sink.csv_file path ]
      with Sys_error msg ->
        Printf.eprintf "mcc workload run: cannot open sink: %s\n" msg;
        exit 2
    in
    (* Like the matrix, workload output is a regression artefact that
       must be byte-identical for any --jobs and scheduler backend, so
       the nondeterministic wall-clock profile is dropped from every
       sink. *)
    let sinks =
      List.map (Sink.map (fun r -> { r with Sink.profile = None })) sinks
    in
    let rows, elapsed =
      Profile.with_wall_clock (fun () ->
          Runner.run_batch ~jobs ?sched ~sinks
            ?on_progress:(progress_callback progress) entries)
    in
    List.iter Sink.close sinks;
    record_ledger ~no_ledger ~kind:"workload" ~label:file
      ~payload:
        (Crossrun.run_payload ~command:"workload"
           ~config:
             [
               ("workload", Json.String file);
               (* Digest of the file bytes: `mcc diff` flags a ledger
                  pair whose configs differ, so editing a workload file
                  between runs surfaces as config drift. *)
               ( "workload_digest",
                 Json.String (Ledger.digest_of_json (Json.String contents)) );
             ]
           rows)
      ~wall:(Crossrun.run_wall ~recorded:(Profile.now ()) rows);
    if not quiet then
      Format.fprintf fmt "@.[%d workload run%s in %.1fs, jobs=%d]@."
        (List.length rows)
        (if List.length rows = 1 then "" else "s")
        elapsed jobs
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"The workload file to run.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write one JSON object per run (byte-identical for any \
             $(b,--jobs)).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH"
          ~doc:"Write summary metrics as name,group,metric,value rows.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Suppress the human-readable report.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run every entry of a declarative workload file (one per seed) \
          across domains.")
    Term.(
      const run $ file $ jobs $ sched_arg $ quick_arg $ json $ csv $ quiet
      $ progress_arg $ no_ledger_arg)

let workload_check_cmd =
  let run all files =
    let files = workload_files ~cmd:"check" ~all files in
    let failures = ref 0 in
    List.iter
      (fun path ->
        match Mcc_workload.Schema.load ~path with
        | Ok entries ->
            Printf.printf "ok %s (%d run%s)\n" path (List.length entries)
              (if List.length entries = 1 then "" else "s")
        | Error msg ->
            incr failures;
            Printf.eprintf "%s\n" msg)
      files;
    if !failures > 0 then begin
      Printf.eprintf "mcc workload check: %d invalid file%s\n" !failures
        (if !failures = 1 then "" else "s");
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate workload files against the schema; exits non-zero with \
          file:field diagnostics on the first violation of each file.")
    Term.(const run $ workload_all_arg $ workload_file_pos)

let workload_list_cmd =
  let run all files =
    let files = workload_files ~cmd:"list" ~all files in
    List.iter
      (fun path ->
        let _, entries = load_workload ~cmd:"list" path in
        Printf.printf "%s\n" path;
        List.iter
          (fun (e : Runner.entry) ->
            Printf.printf "  %-32s %s\n" e.Runner.name e.Runner.doc)
          entries)
      files
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"Show the runs each workload file expands to (one per seed).")
    Term.(const run $ workload_all_arg $ workload_file_pos)

let workload_cmd =
  Cmd.group
    (Cmd.info "workload"
       ~doc:
         "Declarative workloads: run, validate and list JSON workload files \
          (topology generators, churn and traffic models, optional attack).")
    [ workload_run_cmd; workload_check_cmd; workload_list_cmd ]

(* The invariant linter, mounted from the shared surface in
   Mcc_lint.Cli (the standalone mcc-lint binary is the same command).
   Mounted here it records in the run ledger by default, so lint drift
   shows up in `mcc history` and `mcc diff` next to perf drift. *)
let lint_cmd =
  let exit_nonzero code = if code <> 0 then exit code in
  Cmd.v
    (Mcc_lint.Cli.info ~name:"lint")
    Term.(
      const exit_nonzero
      $ Mcc_lint.Cli.term ~name:"mcc lint" ~ledger_default:true)

let main =
  Cmd.group
    (Cmd.info "mcc" ~version:Version.version
       ~doc:
         "Robust multicast congestion control: DELTA + SIGMA experiments \
          (Gorinsky et al.)")
    [
      run_cmd;
      trace_cmd;
      profile_cmd;
      report_cmd;
      history_cmd;
      diff_cmd;
      list_cmd;
      attack_cmd;
      sweep_cmd;
      responsiveness_cmd;
      rtt_cmd;
      convergence_cmd;
      overhead_cmd;
      partial_cmd;
      matrix_cmd;
      workload_cmd;
      lint_cmd;
    ]

let () = exit (Cmd.eval main)
