(* mcc-lint: the invariant linter as a CI gate.

   Examples:
     mcc-lint lib bin bench examples
     mcc-lint --rules wall-clock,mli-coverage lib
     mcc-lint --disable mli-coverage --json=findings.json lib
     mcc-lint --allow lint.allow lib bin

   Exit codes: 0 clean, 1 findings, 2 parse/IO/config errors. *)

open Cmdliner
module Lint = Mcc_lint.Lint
module Json = Mcc_obs.Json

let fmt = Format.std_formatter

let run_lint paths rules disable allow json quiet list_rules =
  if list_rules then begin
    List.iter
      (fun r ->
        Format.fprintf fmt "%-24s %s@." (Lint.rule_id r) (Lint.rule_doc r))
      Lint.all_rules;
    0
  end
  else begin
    let parse_rule id =
      match Lint.rule_of_id id with
      | Some r -> r
      | None ->
          Printf.eprintf "mcc-lint: unknown rule id %S (try --list-rules)\n" id;
          exit 2
    in
    let enabled =
      let base =
        match rules with [] -> Lint.all_rules | ids -> List.map parse_rule ids
      in
      let off = List.map parse_rule disable in
      List.filter (fun r -> not (List.mem r off)) base
    in
    let allowlist =
      (* --allow names a file that must exist; with no flag the
         repo-root lint.allow is picked up when present. *)
      let path =
        match allow with
        | Some p -> Some p
        | None -> if Sys.file_exists "lint.allow" then Some "lint.allow" else None
      in
      match path with
      | None -> []
      | Some p -> (
          match Lint.load_allowlist p with
          | Ok entries -> entries
          | Error msg ->
              Printf.eprintf "mcc-lint: %s\n" msg;
              exit 2)
    in
    let config = { Lint.rules = enabled; allowlist } in
    let report = Lint.run config paths in
    if not quiet then begin
      List.iter
        (fun f -> Format.fprintf fmt "%a@." Lint.pp_finding f)
        report.Lint.findings;
      List.iter
        (fun (file, msg) -> Format.fprintf fmt "%s: error: %s@." file msg)
        report.Lint.errors;
      Format.fprintf fmt "mcc-lint: %d finding%s, %d error%s in %d files@."
        (List.length report.Lint.findings)
        (if List.length report.Lint.findings = 1 then "" else "s")
        (List.length report.Lint.errors)
        (if List.length report.Lint.errors = 1 then "" else "s")
        report.Lint.files_checked
    end;
    (match json with
    | None -> ()
    | Some path ->
        let line = Json.to_string (Lint.report_to_json report) ^ "\n" in
        if String.equal path "-" then print_string line
        else
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc line));
    Lint.exit_code report
  end

let paths =
  Arg.(
    value
    & pos_all string [ "lib" ]
    & info [] ~docv:"PATH"
        ~doc:"Files or directories to lint (default: $(b,lib)).")

let rules =
  Arg.(
    value
    & opt (list string) []
    & info [ "rules"; "r" ] ~docv:"RULE,..."
        ~doc:"Run only these rules (default: all; see $(b,--list-rules)).")

let disable =
  Arg.(
    value
    & opt (list string) []
    & info [ "disable" ] ~docv:"RULE,..." ~doc:"Disable these rules.")

let allow =
  Arg.(
    value
    & opt (some string) None
    & info [ "allow" ] ~docv:"FILE"
        ~doc:
          "Allowlist file: one \"rule-id path\" pair per line, # comments, \
           trailing / for directory prefixes.  Default: $(b,lint.allow) in \
           the current directory, when present.")

let json =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write the findings report as one JSON document to $(docv) \
           ($(b,-) = stdout).")

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress human output.")

let list_rules =
  Arg.(
    value & flag
    & info [ "list-rules" ] ~doc:"Print every rule id with its rationale.")

let cmd =
  let doc =
    "static-analysis gate for the simulator's determinism and domain-safety \
     invariants"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml file under the given paths with the compiler's own \
         parser and rejects constructs that break the reproduction's \
         guarantees: host-clock reads, ambient randomness, module-level \
         mutable state shared across domains, polymorphic float comparison, \
         and missing interfaces.";
      `P
        "Suppress an individual finding with a pragma comment on the same \
         or preceding line: (* lint: allow rule-id — justification *), or \
         with an allowlist entry (see $(b,--allow)).";
      `S Manpage.s_exit_status;
      `P "0 on a clean tree, 1 when findings remain, 2 on parse errors.";
    ]
  in
  Cmd.v
    (Cmd.info "mcc-lint" ~doc ~man)
    Term.(
      const run_lint $ paths $ rules $ disable $ allow $ json $ quiet
      $ list_rules)

let () = exit (Cmd.eval' cmd)
