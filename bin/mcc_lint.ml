(* mcc-lint: the invariant linter as a CI gate.

   A thin shim over Mcc_lint.Cli — the same command is mounted as
   `mcc lint`; the standalone binary exists so `dune build @lint` can
   run the gate without building the whole CLI.  The standalone gate
   does not record in the run ledger unless asked (--ledger): CI loops
   and editor integrations should not grow the ledger.

   Examples:
     mcc-lint lib bin bench examples
     mcc-lint --rules wall-clock,mli-coverage lib
     mcc-lint --disable mli-coverage --json=findings.json lib
     mcc-lint --allow lint.allow --sarif=findings.sarif lib bin

   Exit codes: 0 clean, 1 findings, 2 parse/IO/config errors. *)

let () =
  exit
    (Cmdliner.Cmd.eval'
       (Mcc_lint.Cli.cmd ~name:"mcc-lint" ~ledger_default:false))
