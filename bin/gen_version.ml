(* Emits version.ml from the (version ...) field of dune-project, so the
   CLI's --version string has a single source of truth.  Run by a dune
   rule as an ocaml script:  ocaml gen_version.ml ../dune-project *)

let () =
  let path = Sys.argv.(1) in
  let ic = open_in path in
  let version = ref "dev" in
  (try
     while true do
       let line = String.trim (input_line ic) in
       let prefix = "(version" in
       if
         String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
       then begin
         let v =
           String.sub line (String.length prefix)
             (String.length line - String.length prefix)
         in
         let v = String.trim v in
         let v =
           if String.length v > 0 && v.[String.length v - 1] = ')' then
             String.sub v 0 (String.length v - 1)
           else v
         in
         version := String.trim v
       end
     done
   with End_of_file -> ());
  close_in ic;
  Printf.printf "let version = %S\n" !version
